//! The FaST Backend: pod table, multi-token scheduler and SM Allocation
//! Adapter.

use super::estimator::BurstEstimator;
use super::policy::SharingPolicy;
use fastg_cluster::{PodId, ResourceSpec};
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;

/// Order in which the Ready-function Priority Queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOrder {
    /// The paper's policy: descending `Q_miss = Q_request − Q_used`, so
    /// the pod with the largest timing gap is always served first.
    QMissDesc,
    /// Ablation baseline: plain arrival order.
    Fifo,
}

/// Backend configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendConfig {
    /// Sharing policy this backend enforces.
    pub policy: SharingPolicy,
    /// The scheduling window over which quotas are accounted (paper
    /// example: 1 s, so `quota_limit = 0.8` means 800 ms of GPU time).
    pub window: SimTime,
    /// Token lease duration: how long a granted pod may keep launching
    /// bursts before it must re-request. Longer leases amortize token IPC
    /// but waste GPU during the holder's host gaps (the fundamental
    /// time-sharing inefficiency); shorter leases rotate access faster.
    pub token_lease: SimTime,
    /// The SM Allocation Adapter's global limit (percent). The paper pins
    /// this at 100 %: over-allocating SMs causes interference.
    pub sm_global_limit: f64,
    /// Ready-queue ordering (ablation knob; the paper uses
    /// [`DispatchOrder::QMissDesc`]).
    pub dispatch_order: DispatchOrder,
    /// Strict burst admission: refuse a token when the pod's estimated
    /// next burst (Gemini's kernel-burst estimate, pessimistic bound)
    /// would overrun its remaining window quota. Off by default — the
    /// paper tolerates one burst of overrun instead.
    pub strict_admission: bool,
    /// Adaptive leases: size each lease from the pod's burst estimate
    /// (clamped to `[1 ms, token_lease]`) instead of the fixed duration.
    pub adaptive_lease: bool,
    /// Defer grant passes to an explicit [`FastBackend::dispatch_pass`]
    /// call instead of dispatching inline from `request`/`sync_point`/
    /// release paths. The platform engine turns this on and runs one
    /// batched pass per node at the end of each simulated instant, so
    /// that token grants depend only on the set of same-instant requests
    /// — never on the order they were delivered in (a tie-break race
    /// otherwise: the first requester would grab free capacity before
    /// the others even queued).
    pub deferred_dispatch: bool,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            policy: SharingPolicy::FaST,
            window: SimTime::from_secs(1),
            token_lease: SimTime::from_millis(5),
            sm_global_limit: 100.0,
            dispatch_order: DispatchOrder::QMissDesc,
            strict_admission: false,
            adaptive_lease: false,
            deferred_dispatch: false,
        }
    }
}

/// Errors from backend operations.
///
/// The hot-path operations ([`FastBackend::request`],
/// [`FastBackend::begin_burst`], [`FastBackend::sync_point`]) return this
/// instead of panicking so that racy teardown — a pod deregistered by a
/// crash while its hook still has a call in flight — degrades gracefully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendError {
    /// The pod has no row in the backend table: never registered, or
    /// already deregistered (e.g. torn down by a crash).
    UnknownPod(PodId),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::UnknownPod(p) => {
                write!(f, "pod {p:?} is not registered in the backend")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// A token grant: `pod` may launch bursts until `expires`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The pod granted the token.
    pub pod: PodId,
    /// Lease expiry (absolute). The platform schedules a lease timer here.
    pub expires: SimTime,
    /// Lease epoch, for matching stale timers.
    pub epoch: u64,
}

/// Outcome of a token request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The pod may launch now (fresh or still-valid lease).
    Granted(Grant),
    /// No capacity; the pod is in the ready queue and will be granted
    /// later (returned from a future dispatch).
    Queued,
    /// The pod exhausted `Q_limit` for this window; it will become ready
    /// again at the next window reset.
    BlockedUntilReset,
}

/// Outcome of reporting a synchronization point.
#[derive(Debug, Clone)]
pub struct SyncOutcome {
    /// Whether the pod's lease is still valid (it may launch its next
    /// burst without a new request).
    pub lease_valid: bool,
    /// Pods granted tokens as a consequence (lease released → capacity
    /// freed). The platform must start their pending bursts.
    pub granted: Vec<Grant>,
}

/// Public snapshot of one pod's quota accounting (the backend table row of
/// Figure 5b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodQuotaState {
    /// GPU time consumed in the current window.
    pub q_used: SimTime,
    /// Guaranteed GPU time per window (`quota_request × window`).
    pub q_request: SimTime,
    /// Maximum GPU time per window (`quota_limit × window`).
    pub q_limit: SimTime,
    /// SM partition percentage.
    pub sm_partition: f64,
    /// Whether the pod currently holds a token lease.
    pub holds_token: bool,
}

/// Token-dispatch priority class, the temporal half of Tally-style
/// priority co-location: latency-critical pods outrank best-effort pods
/// in every dispatch pass, so BE kernels only absorb SM budget LC pods
/// left idle. The default is latency-critical, which leaves the paper's
/// dispatch order untouched (every rank equal ⇒ the original Q_miss/FIFO
/// comparison decides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PodClass {
    /// Strict-priority tier: dispatched first, in paper order.
    #[default]
    LatencyCritical,
    /// Opportunistic tier: dispatched only after every ready LC pod.
    BestEffort,
}

impl PodClass {
    /// Sort rank (lower dispatches first).
    fn rank(self) -> u8 {
        match self {
            PodClass::LatencyCritical => 0,
            PodClass::BestEffort => 1,
        }
    }
}

#[derive(Debug, Clone)]
struct PodEntry {
    spec: ResourceSpec,
    class: PodClass,
    q_used: SimTime,
    lease: Option<Lease>,
    waiting: bool,
    /// Simulated time at which the pod last entered the ready queue, for
    /// FIFO dispatch. Sim time, not an enqueue sequence number: pods that
    /// queue at the same instant are logically concurrent, and ordering
    /// them by arrival history would make token grants depend on
    /// same-instant event delivery order (a tie-break race the detector
    /// caught under `SingleToken`). Equal times fall through to the
    /// dispatch sort's PodId tie-break instead.
    waiting_since: SimTime,
    in_burst: bool,
    next_epoch: u64,
    estimator: BurstEstimator,
}

#[derive(Debug, Clone, Copy)]
struct Lease {
    expires: SimTime,
    epoch: u64,
    /// Adapter share reserved at grant time. Releases subtract exactly
    /// this value, so a spec update while the lease is held can never
    /// corrupt the SM accounting.
    share: f64,
}

/// The backend pod table: a Vec of rows sorted by `PodId`. Per-node tables
/// hold at most a handful of pods, so binary search over contiguous rows
/// beats pointer-chasing a tree on the token hot path, and ascending-id
/// iteration keeps the dispatch snapshot order identical to the old
/// `BTreeMap`.
#[derive(Debug, Default)]
struct PodTable {
    rows: Vec<(PodId, PodEntry)>,
}

impl PodTable {
    fn idx(&self, pod: PodId) -> Result<usize, usize> {
        self.rows.binary_search_by_key(&pod, |(id, _)| *id)
    }

    fn get(&self, pod: PodId) -> Option<&PodEntry> {
        self.idx(pod).ok().map(|i| &self.rows[i].1)
    }

    fn get_mut(&mut self, pod: PodId) -> Option<&mut PodEntry> {
        match self.idx(pod) {
            Ok(i) => Some(&mut self.rows[i].1),
            Err(_) => None,
        }
    }

    /// Inserts a fresh row; returns `false` if the pod already had one (the
    /// existing row is kept).
    fn insert(&mut self, pod: PodId, entry: PodEntry) -> bool {
        match self.idx(pod) {
            Ok(_) => false,
            Err(i) => {
                self.rows.insert(i, (pod, entry));
                true
            }
        }
    }

    fn remove(&mut self, pod: PodId) -> Option<PodEntry> {
        match self.idx(pod) {
            Ok(i) => Some(self.rows.remove(i).1),
            Err(_) => None,
        }
    }

    fn iter(&self) -> impl Iterator<Item = (PodId, &PodEntry)> {
        self.rows.iter().map(|(id, e)| (*id, e))
    }

    fn values(&self) -> impl Iterator<Item = &PodEntry> {
        self.rows.iter().map(|(_, e)| e)
    }

    fn values_mut(&mut self) -> impl Iterator<Item = &mut PodEntry> {
        self.rows.iter_mut().map(|(_, e)| e)
    }
}

impl PodEntry {
    fn q_limit_time(&self, window: SimTime) -> SimTime {
        window.scale(self.spec.quota_limit)
    }
    fn q_request_time(&self, window: SimTime) -> SimTime {
        window.scale(self.spec.quota_request)
    }
    /// `Q_miss = Q_request − Q_used`, in signed microseconds.
    fn q_miss(&self, window: SimTime) -> i128 {
        i128::from(self.q_request_time(window).as_micros()) - i128::from(self.q_used.as_micros())
    }
    fn quota_exhausted(&self, window: SimTime) -> bool {
        self.q_used >= self.q_limit_time(window)
    }
}

/// The FaST Backend for one GPU node.
///
/// A complete token round-trip, as the CUDA hook library drives it:
///
/// ```
/// use fastgshare::manager::{BackendConfig, FastBackend, RequestOutcome};
/// use fastg_cluster::{PodId, ResourceSpec};
/// use fastg_des::SimTime;
///
/// let mut backend = FastBackend::new(BackendConfig::default());
/// backend.register(PodId(0), ResourceSpec::new(24.0, 0.3, 0.8, 0));
///
/// // The hook intercepts the first kernel launch and asks for a token.
/// let (outcome, _side_grants) = backend.request(SimTime::ZERO, PodId(0)).unwrap();
/// assert!(matches!(outcome, RequestOutcome::Granted(_)));
///
/// // Kernels run; the sync point reports 2 ms of GPU time.
/// backend.begin_burst(PodId(0)).unwrap();
/// let sync = backend
///     .sync_point(SimTime::from_millis(2), PodId(0), SimTime::from_millis(2))
///     .unwrap();
/// assert!(sync.lease_valid); // within lease and quota
/// assert_eq!(
///     backend.quota_state(PodId(0)).unwrap().q_used,
///     SimTime::from_millis(2)
/// );
/// ```
#[derive(Debug)]
pub struct FastBackend {
    cfg: BackendConfig,
    pods: PodTable,
    /// Sum of adapter shares of current lease holders.
    sm_running: f64,
    tokens_dispatched: u64,
}

impl FastBackend {
    /// Creates a backend.
    pub fn new(cfg: BackendConfig) -> Self {
        debug_assert!(cfg.window > SimTime::ZERO, "zero scheduling window");
        debug_assert!(cfg.token_lease > SimTime::ZERO, "zero token lease");
        debug_assert!(cfg.sm_global_limit > 0.0, "zero SM global limit");
        let mut cfg = cfg;
        cfg.window = cfg.window.max(SimTime::from_micros(1));
        cfg.token_lease = cfg.token_lease.max(SimTime::from_micros(1));
        cfg.sm_global_limit = cfg.sm_global_limit.max(f64::EPSILON);
        FastBackend {
            cfg,
            pods: PodTable::default(),
            sm_running: 0.0,
            tokens_dispatched: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BackendConfig {
        &self.cfg
    }

    /// Registers a pod's resource configuration in the backend table (the
    /// FaSTPod controller does this when the pod starts). The pod joins
    /// the latency-critical class, i.e. paper dispatch semantics.
    pub fn register(&mut self, pod: PodId, spec: ResourceSpec) {
        self.register_class(pod, spec, PodClass::LatencyCritical);
    }

    /// Registers a pod with an explicit dispatch class (the co-location
    /// policy marks elastic pods best-effort).
    pub fn register_class(&mut self, pod: PodId, spec: ResourceSpec, class: PodClass) {
        spec.validate();
        let fresh = self.pods.insert(
            pod,
            PodEntry {
                spec,
                class,
                q_used: SimTime::ZERO,
                lease: None,
                waiting: false,
                waiting_since: SimTime::ZERO,
                in_burst: false,
                next_epoch: 0,
                estimator: BurstEstimator::new(BurstEstimator::default_alpha()),
            },
        );
        debug_assert!(fresh, "pod {pod:?} registered twice");
    }

    /// A pod's dispatch class, if registered.
    pub fn class_of(&self, pod: PodId) -> Option<PodClass> {
        self.pods.get(pod).map(|e| e.class)
    }

    /// Updates a pod's resource configuration (FaSTPod spec sync). Takes
    /// effect from the next grant; a held lease keeps its original share
    /// until released.
    pub fn update_spec(&mut self, pod: PodId, spec: ResourceSpec) {
        spec.validate();
        if let Some(e) = self.pods.get_mut(pod) {
            // Safe even while the pod holds a token: the lease carries
            // the share it reserved, so accounting stays exact; the new
            // partition/quota apply from the next grant and the current
            // window's Q_used carries over.
            e.spec = spec;
        }
    }

    /// Removes a pod. Returns grants unblocked by the freed capacity.
    ///
    /// Deregistering a pod mid-burst is a platform bug (the caller drains
    /// first); debug builds assert, release builds fall through to the
    /// forced path, which reconciles the accounting either way.
    pub fn deregister(&mut self, now: SimTime, pod: PodId) -> Vec<Grant> {
        if let Some(e) = self.pods.get(pod) {
            debug_assert!(!e.in_burst, "deregistering {pod:?} mid-burst");
        }
        self.force_deregister(now, pod)
    }

    /// Removes a pod unconditionally — the failure-injection path: a
    /// crashed pod's kernels may still be draining on the GPU, but its
    /// table row, queue slot and SM reservation go away immediately.
    pub fn force_deregister(&mut self, now: SimTime, pod: PodId) -> Vec<Grant> {
        let Some(e) = self.pods.remove(pod) else {
            return Vec::new();
        };
        if let Some(lease) = e.lease {
            self.sm_running = (self.sm_running - lease.share).max(0.0);
        }
        self.dispatch_or_defer(now)
    }

    /// A pod's hook asks for a token so it can launch its next burst.
    ///
    /// Returns the requester's outcome plus any *side grants*: releasing
    /// the requester's stale lease can free enough SM budget to admit
    /// other queued pods, and the caller must start their pending bursts.
    ///
    /// # Errors
    /// [`BackendError::UnknownPod`] if the pod is not registered.
    pub fn request(
        &mut self,
        now: SimTime,
        pod: PodId,
    ) -> Result<(RequestOutcome, Vec<Grant>), BackendError> {
        if !self.cfg.policy.uses_tokens() {
            // Racing / exclusive: permission is unconditional.
            let e = self.entry_mut(pod)?;
            e.next_epoch += 1;
            let grant = Grant {
                pod,
                expires: SimTime::MAX,
                epoch: e.next_epoch,
            };
            return Ok((RequestOutcome::Granted(grant), Vec::new()));
        }
        let window = self.cfg.window;
        let strict = self.cfg.strict_admission;
        let e = self.entry_mut(pod)?;
        // Strict admission applies per burst, even on a held lease: if the
        // estimated next burst would overrun the remaining quota, the pod
        // yields until the window resets (unless its window is untouched,
        // which guarantees progress).
        let strict_defer = strict
            && e.q_used > SimTime::ZERO
            && e.estimator
                .upper()
                .is_some_and(|est| e.q_used + est > e.q_limit_time(window));
        if !strict_defer {
            if let Some(lease) = e.lease {
                if now < lease.expires && !e.quota_exhausted(window) {
                    let grant = Grant {
                        pod,
                        expires: lease.expires,
                        epoch: lease.epoch,
                    };
                    return Ok((RequestOutcome::Granted(grant), Vec::new()));
                }
            }
        }
        // Any stale lease is released before queueing.
        let released = e.lease.take();
        if !e.waiting {
            e.waiting = true;
            e.waiting_since = now;
        }
        if let Some(lease) = released {
            self.sm_running = (self.sm_running - lease.share).max(0.0);
        }
        let blocked = self.entry(pod)?.quota_exhausted(window);
        // Dispatch regardless: the released capacity may admit others
        // even when the requester itself is quota-blocked.
        let mut grants = self.dispatch_or_defer(now);
        let own = grants.iter().position(|g| g.pod == pod);
        Ok(match own {
            Some(i) => {
                let g = grants.remove(i);
                (RequestOutcome::Granted(g), grants)
            }
            None if blocked => (RequestOutcome::BlockedUntilReset, grants),
            None => (RequestOutcome::Queued, grants),
        })
    }

    /// Marks the pod as executing a burst (launched kernels, sync pending).
    /// A pod mid-burst never loses its SM reservation.
    ///
    /// # Errors
    /// [`BackendError::UnknownPod`] if the pod is not registered.
    pub fn begin_burst(&mut self, pod: PodId) -> Result<(), BackendError> {
        let e = self.entry_mut(pod)?;
        debug_assert!(!e.in_burst, "nested burst for {pod:?}");
        e.in_burst = true;
        Ok(())
    }

    /// The pod's burst synchronized: charge `gpu_time` against its quota
    /// (the CUDA-event usage monitor) and decide whether its lease
    /// survives.
    ///
    /// # Errors
    /// [`BackendError::UnknownPod`] if the pod is not registered (e.g. it
    /// was force-deregistered by a crash while the burst was in flight).
    pub fn sync_point(
        &mut self,
        now: SimTime,
        pod: PodId,
        gpu_time: SimTime,
    ) -> Result<SyncOutcome, BackendError> {
        let window = self.cfg.window;
        let policy = self.cfg.policy;
        let e = self.entry_mut(pod)?;
        debug_assert!(e.in_burst, "sync without burst for {pod:?}");
        e.in_burst = false;
        e.q_used += gpu_time;
        e.estimator.observe(gpu_time);
        if !policy.uses_tokens() {
            return Ok(SyncOutcome {
                lease_valid: true,
                granted: Vec::new(),
            });
        }
        let expired = match e.lease {
            Some(l) => now >= l.expires,
            None => true,
        };
        Ok(if expired || e.quota_exhausted(window) {
            if let Some(lease) = e.lease.take() {
                self.sm_running = (self.sm_running - lease.share).max(0.0);
            }
            SyncOutcome {
                lease_valid: false,
                granted: self.dispatch_or_defer(now),
            }
        } else {
            SyncOutcome {
                lease_valid: true,
                granted: Vec::new(),
            }
        })
    }

    /// The pod went idle (no queued request): release its lease so other
    /// pods can use the capacity.
    pub fn release_idle(&mut self, now: SimTime, pod: PodId) -> Vec<Grant> {
        let Some(e) = self.pods.get_mut(pod) else {
            return Vec::new();
        };
        e.waiting = false;
        if let Some(lease) = e.lease.take() {
            self.sm_running = (self.sm_running - lease.share).max(0.0);
            self.dispatch_or_defer(now)
        } else {
            Vec::new()
        }
    }

    /// A lease timer fired. If the lease is still current and the pod is
    /// between bursts, the lease is reclaimed (host-gap reclamation);
    /// mid-burst leases are reclaimed at the next sync instead.
    pub fn on_lease_timer(&mut self, now: SimTime, pod: PodId, epoch: u64) -> Vec<Grant> {
        let Some(e) = self.pods.get_mut(pod) else {
            return Vec::new();
        };
        match e.lease {
            Some(l) if l.epoch == epoch && !e.in_burst => {
                e.lease = None;
                self.sm_running = (self.sm_running - l.share).max(0.0);
                self.dispatch_or_defer(now)
            }
            _ => Vec::new(),
        }
    }

    /// Runs one explicit grant pass over the ready queue (the engine's
    /// end-of-instant batched dispatch under
    /// [`BackendConfig::deferred_dispatch`]).
    pub fn dispatch_pass(&mut self, now: SimTime) -> Vec<Grant> {
        self.dispatch(now)
    }

    /// Inline dispatch, suppressed under deferred dispatch (the engine
    /// will run [`Self::dispatch_pass`] at the end of the instant).
    fn dispatch_or_defer(&mut self, now: SimTime) -> Vec<Grant> {
        if self.cfg.deferred_dispatch {
            Vec::new()
        } else {
            self.dispatch(now)
        }
    }

    /// Window boundary: every pod's `Q_used` resets and blocked pods become
    /// ready again (Figure 5b's `F_3` re-entering the queue).
    pub fn on_window_reset(&mut self, now: SimTime) -> Vec<Grant> {
        for e in self.pods.values_mut() {
            e.q_used = SimTime::ZERO;
        }
        self.dispatch_or_defer(now)
    }

    /// The multi-token dispatch pass: filtering → priority queue →
    /// SM Allocation Adapter.
    fn dispatch(&mut self, now: SimTime) -> Vec<Grant> {
        if !self.cfg.policy.uses_tokens() {
            return Vec::new();
        }
        let window = self.cfg.window;
        // Filtering: waiting pods that still have quota this window.
        // Under strict admission, a pod whose estimated next burst would
        // overrun its remaining quota also waits — unless its window is
        // still untouched, which guarantees forward progress even for
        // bursts larger than the whole quota.
        let strict = self.cfg.strict_admission;
        let mut ready: Vec<(u8, i128, SimTime, PodId)> = self
            .pods
            .iter()
            .filter(|(_, e)| e.waiting && e.lease.is_none() && !e.quota_exhausted(window))
            .filter(|(_, e)| {
                if !strict || e.q_used == SimTime::ZERO {
                    return true;
                }
                match e.estimator.upper() {
                    Some(est) => e.q_used + est <= e.q_limit_time(window),
                    None => true,
                }
            })
            .map(|(id, e)| (e.class.rank(), e.q_miss(window), e.waiting_since, id))
            .collect();
        // Priority: the co-location class rank first (LC strictly before
        // BE; all-LC tables degenerate to the paper's order), then
        // descending Q_miss (largest timing gap first, the paper's rule)
        // or plain FIFO for the ablation; PodId breaks remaining ties
        // deterministically.
        match self.cfg.dispatch_order {
            DispatchOrder::QMissDesc => {
                ready.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)).then(a.3.cmp(&b.3)));
            }
            DispatchOrder::Fifo => {
                ready.sort_by(|a, b| a.0.cmp(&b.0).then(a.2.cmp(&b.2)).then(a.3.cmp(&b.3)));
            }
        }

        let mut grants = Vec::new();
        for (_class, _miss, _since, pod) in ready {
            // The ready list was snapshotted from the table above, so the
            // row exists — but stay panic-free and skip if it is gone.
            let Some(entry) = self.pods.get(pod) else {
                continue;
            };
            let share = self.cfg.policy.adapter_share(entry.spec.sm_partition);
            // SM Allocation Adapter: stop at the first head pod that does
            // not fit (head-of-line, as in the paper).
            if self.sm_running + share > self.cfg.sm_global_limit + 1e-9 {
                break;
            }
            let Some(e) = self.pods.get_mut(pod) else {
                continue;
            };
            e.waiting = false;
            e.next_epoch += 1;
            let duration = if self.cfg.adaptive_lease {
                match e.estimator.mean() {
                    // A few bursts per lease amortizes the token IPC
                    // without monopolizing the adapter budget.
                    Some(m) => (m * 4)
                        .max(SimTime::from_millis(1))
                        .min(self.cfg.token_lease),
                    None => self.cfg.token_lease,
                }
            } else {
                self.cfg.token_lease
            };
            let lease = Lease {
                expires: now + duration,
                epoch: e.next_epoch,
                share,
            };
            e.lease = Some(lease);
            self.sm_running += share;
            self.tokens_dispatched += 1;
            grants.push(Grant {
                pod,
                expires: lease.expires,
                epoch: lease.epoch,
            });
        }
        debug_assert!(self.sm_running <= self.cfg.sm_global_limit + 1e-6);
        grants
    }

    /// Snapshot of one pod's quota row.
    pub fn quota_state(&self, pod: PodId) -> Option<PodQuotaState> {
        self.pods.get(pod).map(|e| PodQuotaState {
            q_used: e.q_used,
            q_request: e.q_request_time(self.cfg.window),
            q_limit: e.q_limit_time(self.cfg.window),
            sm_partition: e.spec.sm_partition,
            holds_token: e.lease.is_some(),
        })
    }

    /// The pod's smoothed kernel-burst estimate (Gemini mechanism), if
    /// any bursts have been observed.
    pub fn burst_estimate(&self, pod: PodId) -> Option<SimTime> {
        self.pods.get(pod).and_then(|e| e.estimator.mean())
    }

    /// Sum of lease holders' adapter shares (≤ `sm_global_limit`).
    pub fn sm_running(&self) -> f64 {
        self.sm_running
    }

    /// Number of pods currently holding a lease.
    pub fn holders(&self) -> usize {
        self.pods.values().filter(|e| e.lease.is_some()).count()
    }

    /// Number of pods waiting in the ready queue.
    pub fn waiting(&self) -> usize {
        self.pods.values().filter(|e| e.waiting).count()
    }

    /// Total tokens dispatched since creation.
    pub fn tokens_dispatched(&self) -> u64 {
        self.tokens_dispatched
    }

    /// A probe of the counters cluster fast-forward templates around one
    /// real cycle: `(q_used, next_epoch, tokens_dispatched)`. All three are
    /// exact integer quantities, so per-cycle deltas derived from two
    /// probes are exact.
    pub fn steady_probe(&self, pod: PodId) -> Option<(SimTime, u64, u64)> {
        self.pods
            .get(pod)
            .map(|e| (e.q_used, e.next_epoch, self.tokens_dispatched))
    }

    /// Credits `k` coalesced steady cycles against `pod` in closed form —
    /// bit-identical to replaying the template cycle `k` times through
    /// `request`/`sync_point`/`release_idle`, because `q_used`, epochs and
    /// token counts are all integer sums. Only valid between cycles, when
    /// the pod is idle (no lease, no burst, not queued) — which holds at
    /// the completion instants cluster FF enters and advances on.
    pub fn credit_steady_cycles(
        &mut self,
        pod: PodId,
        k: u64,
        cycle_gpu: SimTime,
        cycle_epochs: u64,
        cycle_tokens: u64,
    ) {
        self.tokens_dispatched += cycle_tokens * k;
        if let Some(e) = self.pods.get_mut(pod) {
            debug_assert!(
                e.lease.is_none() && !e.in_burst && !e.waiting,
                "steady credit on non-idle pod {pod:?}"
            );
            e.q_used += cycle_gpu * k;
            e.next_epoch += cycle_epochs * k;
            // The burst estimator is deliberately NOT credited: an EWMA of
            // k identical observations has no exact closed form, and the
            // estimate is inert under the cluster-FF eligibility gates
            // (strict admission and adaptive leases off), so skipping the
            // observations is benign drift rather than divergence.
        }
    }

    /// Resets one pod's window accounting (the cluster fast-forward
    /// catch-up applying a coalesced window boundary to a node whose only
    /// active pod is in the steady regime; other rows are untouched, which
    /// matches [`Self::on_window_reset`] because idle rows hold
    /// `q_used == 0` already).
    pub fn reset_window_quota(&mut self, pod: PodId) {
        if let Some(e) = self.pods.get_mut(pod) {
            e.q_used = SimTime::ZERO;
        }
    }

    fn entry(&self, pod: PodId) -> Result<&PodEntry, BackendError> {
        self.pods.get(pod).ok_or(BackendError::UnknownPod(pod))
    }

    fn entry_mut(&mut self, pod: PodId) -> Result<&mut PodEntry, BackendError> {
        self.pods.get_mut(pod).ok_or(BackendError::UnknownPod(pod))
    }
}

impl Snap for DispatchOrder {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            DispatchOrder::QMissDesc => 0,
            DispatchOrder::Fifo => 1,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => DispatchOrder::QMissDesc,
            1 => DispatchOrder::Fifo,
            _ => return Err(SnapError::new("dispatch order tag")),
        })
    }
}

impl Snap for BackendConfig {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            policy,
            window,
            token_lease,
            sm_global_limit,
            dispatch_order,
            strict_admission,
            adaptive_lease,
            deferred_dispatch,
        } = self;
        policy.snap(w);
        window.snap(w);
        token_lease.snap(w);
        sm_global_limit.snap(w);
        dispatch_order.snap(w);
        strict_admission.snap(w);
        adaptive_lease.snap(w);
        deferred_dispatch.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cfg = BackendConfig {
            policy: SharingPolicy::unsnap(r)?,
            window: SimTime::unsnap(r)?,
            token_lease: SimTime::unsnap(r)?,
            sm_global_limit: f64::unsnap(r)?,
            dispatch_order: DispatchOrder::unsnap(r)?,
            strict_admission: bool::unsnap(r)?,
            adaptive_lease: bool::unsnap(r)?,
            deferred_dispatch: bool::unsnap(r)?,
        };
        if cfg.window == SimTime::ZERO
            || cfg.token_lease == SimTime::ZERO
            || !(cfg.sm_global_limit.is_finite() && cfg.sm_global_limit > 0.0)
        {
            return Err(SnapError::new("backend config bounds"));
        }
        Ok(cfg)
    }
}

impl Snap for PodClass {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(self.rank());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => PodClass::LatencyCritical,
            1 => PodClass::BestEffort,
            _ => return Err(SnapError::new("pod class tag")),
        })
    }
}

impl Snap for Lease {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            expires,
            epoch,
            share,
        } = self;
        expires.snap(w);
        w.u64(*epoch);
        share.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Lease {
            expires: SimTime::unsnap(r)?,
            epoch: r.u64()?,
            share: f64::unsnap(r)?,
        })
    }
}

impl Snap for PodEntry {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            spec,
            class,
            q_used,
            lease,
            waiting,
            waiting_since,
            in_burst,
            next_epoch,
            estimator,
        } = self;
        spec.snap(w);
        class.snap(w);
        q_used.snap(w);
        lease.snap(w);
        waiting.snap(w);
        waiting_since.snap(w);
        in_burst.snap(w);
        w.u64(*next_epoch);
        estimator.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let entry = PodEntry {
            spec: ResourceSpec::unsnap(r)?,
            class: PodClass::unsnap(r)?,
            q_used: SimTime::unsnap(r)?,
            lease: Option::unsnap(r)?,
            waiting: bool::unsnap(r)?,
            waiting_since: SimTime::unsnap(r)?,
            in_burst: bool::unsnap(r)?,
            next_epoch: r.u64()?,
            estimator: BurstEstimator::unsnap(r)?,
        };
        if entry
            .lease
            .is_some_and(|lease| lease.epoch > entry.next_epoch)
        {
            return Err(SnapError::new("backend lease epoch"));
        }
        Ok(entry)
    }
}

impl Snap for FastBackend {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            cfg,
            pods,
            sm_running,
            tokens_dispatched,
        } = self;
        cfg.snap(w);
        pods.rows.snap(w);
        sm_running.snap(w);
        w.u64(*tokens_dispatched);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cfg = BackendConfig::unsnap(r)?;
        let rows: Vec<(PodId, PodEntry)> = Vec::unsnap(r)?;
        if rows.windows(2).any(|pair| pair[0].0 >= pair[1].0) {
            return Err(SnapError::new("backend row order"));
        }
        let sm_running = f64::unsnap(r)?;
        if !(sm_running.is_finite() && sm_running >= 0.0) {
            return Err(SnapError::new("backend sm accounting"));
        }
        Ok(FastBackend {
            cfg,
            pods: PodTable { rows },
            sm_running,
            tokens_dispatched: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000;

    fn fast_backend(lease_ms: u64) -> FastBackend {
        FastBackend::new(BackendConfig {
            policy: SharingPolicy::FaST,
            window: SimTime::from_secs(1),
            token_lease: SimTime::from_millis(lease_ms),
            sm_global_limit: 100.0,
            ..BackendConfig::default()
        })
    }

    fn spec(sm: f64, req: f64, lim: f64) -> ResourceSpec {
        ResourceSpec::new(sm, req, lim, 0)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * MS)
    }

    /// Unwraps the requester-facing outcome, asserting no side grants —
    /// every call site here either expects none or checks them itself.
    fn req(b: &mut FastBackend, now: SimTime, pod: PodId) -> RequestOutcome {
        let (outcome, side) = b.request(now, pod).unwrap();
        assert!(side.is_empty(), "unexpected side grants: {side:?}");
        outcome
    }

    #[test]
    fn grant_within_sm_budget() {
        let mut b = fast_backend(5);
        for i in 0..4 {
            b.register(PodId(i), spec(24.0, 1.0, 1.0));
        }
        // 4 × 24 = 96 ≤ 100: everyone granted immediately.
        for i in 0..4 {
            assert!(matches!(
                req(&mut b, SimTime::ZERO, PodId(i)),
                RequestOutcome::Granted(_)
            ));
        }
        assert_eq!(b.holders(), 4);
        assert!((b.sm_running() - 96.0).abs() < 1e-9);
    }

    #[test]
    fn sm_adapter_blocks_over_allocation() {
        let mut b = fast_backend(5);
        for i in 0..5 {
            b.register(PodId(i), spec(24.0, 1.0, 1.0));
        }
        for i in 0..4 {
            assert!(matches!(
                req(&mut b, SimTime::ZERO, PodId(i)),
                RequestOutcome::Granted(_)
            ));
        }
        // Fifth pod: 96 + 24 > 100 → queued.
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(4)), RequestOutcome::Queued);
        assert_eq!(b.waiting(), 1);
        // One holder goes idle → fifth gets the token.
        let grants = b.release_idle(t(1), PodId(0));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].pod, PodId(4));
    }

    #[test]
    fn quota_exhaustion_blocks_until_reset() {
        let mut b = fast_backend(5);
        b.register(PodId(0), spec(24.0, 0.3, 0.3));
        let RequestOutcome::Granted(_) = req(&mut b, SimTime::ZERO, PodId(0)) else {
            panic!()
        };
        b.begin_burst(PodId(0)).unwrap();
        // Burn the whole 300ms quota in one burst.
        let out = b.sync_point(t(300), PodId(0), t(300)).unwrap();
        assert!(!out.lease_valid);
        assert_eq!(
            req(&mut b, t(300), PodId(0)),
            RequestOutcome::BlockedUntilReset
        );
        // Window reset re-admits it.
        let grants = b.on_window_reset(t(1000));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].pod, PodId(0));
        assert_eq!(b.quota_state(PodId(0)).unwrap().q_used, SimTime::ZERO);
    }

    #[test]
    fn q_miss_priority_orders_dispatch() {
        let mut b = fast_backend(5);
        // One holder plus two waiters that each need the whole remaining
        // adapter budget.
        b.register(PodId(0), spec(60.0, 0.5, 1.0));
        b.register(PodId(1), spec(60.0, 0.2, 1.0)); // Q_miss = 200ms
        b.register(PodId(2), spec(60.0, 0.8, 1.0)); // Q_miss = 800ms
        assert!(matches!(
            req(&mut b, SimTime::ZERO, PodId(0)),
            RequestOutcome::Granted(_)
        ));
        // Pod 1 requests before pod 2 and has the lower id — but pod 2's
        // larger timing gap must win the next token.
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(1)), RequestOutcome::Queued);
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(2)), RequestOutcome::Queued);
        let grants = b.release_idle(t(1), PodId(0));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].pod, PodId(2));
        assert_eq!(b.waiting(), 1); // pod 1 still queued behind
    }

    #[test]
    fn class_rank_outranks_q_miss() {
        let mut b = fast_backend(5);
        // One holder plus two waiters: a best-effort pod with a huge
        // timing gap and a latency-critical pod with a small one. The LC
        // pod must win the next token despite losing on Q_miss.
        b.register(PodId(0), spec(60.0, 0.5, 1.0));
        b.register_class(PodId(1), spec(60.0, 0.8, 1.0), PodClass::BestEffort);
        b.register_class(PodId(2), spec(60.0, 0.2, 1.0), PodClass::LatencyCritical);
        assert_eq!(b.class_of(PodId(1)), Some(PodClass::BestEffort));
        assert_eq!(b.class_of(PodId(0)), Some(PodClass::LatencyCritical));
        assert!(matches!(
            req(&mut b, SimTime::ZERO, PodId(0)),
            RequestOutcome::Granted(_)
        ));
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(1)), RequestOutcome::Queued);
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(2)), RequestOutcome::Queued);
        let grants = b.release_idle(t(1), PodId(0));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].pod, PodId(2), "LC dispatches before BE");
    }

    #[test]
    fn lease_survives_within_duration_and_quota() {
        let mut b = fast_backend(10);
        b.register(PodId(0), spec(24.0, 1.0, 1.0));
        let RequestOutcome::Granted(g) = req(&mut b, SimTime::ZERO, PodId(0)) else {
            panic!()
        };
        b.begin_burst(PodId(0)).unwrap();
        let out = b.sync_point(t(2), PodId(0), t(2)).unwrap();
        assert!(out.lease_valid);
        // Re-request within lease: same epoch, no new dispatch.
        let RequestOutcome::Granted(g2) = req(&mut b, t(3), PodId(0)) else {
            panic!()
        };
        assert_eq!(g2.epoch, g.epoch);
        assert_eq!(b.tokens_dispatched(), 1);
    }

    #[test]
    fn lease_expiry_at_sync_releases_and_dispatches() {
        let mut b = fast_backend(5);
        b.register(PodId(0), spec(60.0, 1.0, 1.0));
        b.register(PodId(1), spec(60.0, 1.0, 1.0));
        assert!(matches!(
            req(&mut b, SimTime::ZERO, PodId(0)),
            RequestOutcome::Granted(_)
        ));
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(1)), RequestOutcome::Queued);
        b.begin_burst(PodId(0)).unwrap();
        // Sync after the 5ms lease expired → pod 1 granted.
        let out = b.sync_point(t(6), PodId(0), t(6)).unwrap();
        assert!(!out.lease_valid);
        assert_eq!(out.granted.len(), 1);
        assert_eq!(out.granted[0].pod, PodId(1));
    }

    #[test]
    fn lease_timer_reclaims_host_gap_holder() {
        let mut b = fast_backend(5);
        b.register(PodId(0), spec(60.0, 1.0, 1.0));
        b.register(PodId(1), spec(60.0, 1.0, 1.0));
        let RequestOutcome::Granted(g) = req(&mut b, SimTime::ZERO, PodId(0)) else {
            panic!()
        };
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(1)), RequestOutcome::Queued);
        // Pod 0 sits in a host phase (no burst). Timer fires at expiry.
        let grants = b.on_lease_timer(g.expires, PodId(0), g.epoch);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].pod, PodId(1));
        assert_eq!(b.holders(), 1);
    }

    #[test]
    fn stale_lease_timer_is_ignored() {
        let mut b = fast_backend(5);
        b.register(PodId(0), spec(24.0, 1.0, 1.0));
        let RequestOutcome::Granted(g1) = req(&mut b, SimTime::ZERO, PodId(0)) else {
            panic!()
        };
        // Pod releases and re-acquires: epoch moves on.
        b.release_idle(t(1), PodId(0));
        let RequestOutcome::Granted(g2) = req(&mut b, t(2), PodId(0)) else {
            panic!()
        };
        assert_ne!(g1.epoch, g2.epoch);
        // The old timer fires and must not reclaim the new lease.
        let grants = b.on_lease_timer(g1.expires, PodId(0), g1.epoch);
        assert!(grants.is_empty());
        assert_eq!(b.holders(), 1);
    }

    #[test]
    fn lease_timer_mid_burst_defers_to_sync() {
        let mut b = fast_backend(5);
        b.register(PodId(0), spec(60.0, 1.0, 1.0));
        b.register(PodId(1), spec(60.0, 1.0, 1.0));
        let RequestOutcome::Granted(g) = req(&mut b, SimTime::ZERO, PodId(0)) else {
            panic!()
        };
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(1)), RequestOutcome::Queued);
        b.begin_burst(PodId(0)).unwrap();
        // Timer fires mid-burst: nothing happens (SMs are busy).
        assert!(b.on_lease_timer(g.expires, PodId(0), g.epoch).is_empty());
        assert_eq!(b.holders(), 1);
        // The sync then releases.
        let out = b.sync_point(t(7), PodId(0), t(7)).unwrap();
        assert!(!out.lease_valid);
        assert_eq!(out.granted[0].pod, PodId(1));
    }

    #[test]
    fn single_token_admits_one_at_a_time() {
        let mut b = FastBackend::new(BackendConfig {
            policy: SharingPolicy::SingleToken,
            ..BackendConfig::default()
        });
        b.register(PodId(0), spec(100.0, 1.0, 1.0));
        b.register(PodId(1), spec(100.0, 1.0, 1.0));
        b.register(PodId(2), spec(12.0, 1.0, 1.0)); // partition irrelevant
        assert!(matches!(
            req(&mut b, SimTime::ZERO, PodId(0)),
            RequestOutcome::Granted(_)
        ));
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(1)), RequestOutcome::Queued);
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(2)), RequestOutcome::Queued);
        assert_eq!(b.holders(), 1);
        let grants = b.release_idle(t(1), PodId(0));
        assert_eq!(grants.len(), 1, "only one successor under time sharing");
    }

    #[test]
    fn racing_policy_grants_unconditionally() {
        let mut b = FastBackend::new(BackendConfig {
            policy: SharingPolicy::Racing,
            ..BackendConfig::default()
        });
        for i in 0..10 {
            b.register(PodId(i), spec(100.0, 1.0, 1.0));
            assert!(matches!(
                req(&mut b, SimTime::ZERO, PodId(i)),
                RequestOutcome::Granted(_)
            ));
        }
        // No lease accounting under racing.
        assert_eq!(b.holders(), 0);
        assert_eq!(b.sm_running(), 0.0);
    }

    #[test]
    fn elastic_quota_allows_usage_beyond_request() {
        let mut b = fast_backend(1000);
        b.register(PodId(0), spec(24.0, 0.3, 0.8));
        assert!(matches!(
            req(&mut b, SimTime::ZERO, PodId(0)),
            RequestOutcome::Granted(_)
        ));
        b.begin_burst(PodId(0)).unwrap();
        // Used 500ms: beyond request (300) but below limit (800) → keeps
        // going while idle capacity exists.
        let out = b.sync_point(t(500), PodId(0), t(500)).unwrap();
        assert!(out.lease_valid);
        b.begin_burst(PodId(0)).unwrap();
        // Hits the 800ms limit → blocked.
        let out = b.sync_point(t(900), PodId(0), t(400)).unwrap();
        assert!(!out.lease_valid);
        assert_eq!(
            req(&mut b, t(900), PodId(0)),
            RequestOutcome::BlockedUntilReset
        );
    }

    #[test]
    fn deregister_frees_capacity() {
        let mut b = fast_backend(5);
        b.register(PodId(0), spec(60.0, 1.0, 1.0));
        b.register(PodId(1), spec(60.0, 1.0, 1.0));
        assert!(matches!(
            req(&mut b, SimTime::ZERO, PodId(0)),
            RequestOutcome::Granted(_)
        ));
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(1)), RequestOutcome::Queued);
        let grants = b.deregister(t(1), PodId(0));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].pod, PodId(1));
        assert!(b.quota_state(PodId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let mut b = fast_backend(5);
        b.register(PodId(0), spec(10.0, 0.5, 0.5));
        b.register(PodId(0), spec(10.0, 0.5, 0.5));
    }

    #[test]
    fn fifo_dispatch_ignores_q_miss() {
        let mut b = FastBackend::new(BackendConfig {
            policy: SharingPolicy::FaST,
            window: SimTime::from_secs(1),
            token_lease: SimTime::from_millis(5),
            dispatch_order: DispatchOrder::Fifo,
            ..BackendConfig::default()
        });
        b.register(PodId(0), spec(60.0, 0.5, 1.0));
        b.register(PodId(1), spec(60.0, 0.2, 1.0)); // low Q_miss, queues first
        b.register(PodId(2), spec(60.0, 0.8, 1.0)); // high Q_miss, queues later
        assert!(matches!(
            req(&mut b, SimTime::ZERO, PodId(0)),
            RequestOutcome::Granted(_)
        ));
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(1)), RequestOutcome::Queued);
        assert_eq!(req(&mut b, SimTime::ZERO, PodId(2)), RequestOutcome::Queued);
        // Under FIFO, pod 1 (earlier arrival) wins despite the smaller
        // timing gap — the opposite of q_miss_priority_orders_dispatch.
        let grants = b.release_idle(t(1), PodId(0));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].pod, PodId(1));
    }

    #[test]
    fn burst_estimator_learns_from_syncs() {
        let mut b = fast_backend(50);
        b.register(PodId(0), spec(24.0, 1.0, 1.0));
        assert_eq!(b.burst_estimate(PodId(0)), None);
        for _ in 0..5 {
            let RequestOutcome::Granted(_) = req(&mut b, SimTime::ZERO, PodId(0)) else {
                panic!()
            };
            b.begin_burst(PodId(0)).unwrap();
            b.sync_point(t(1), PodId(0), t(2)).unwrap();
        }
        assert_eq!(b.burst_estimate(PodId(0)), Some(t(2)));
    }

    #[test]
    fn strict_admission_defers_overrunning_burst() {
        let mut b = FastBackend::new(BackendConfig {
            policy: SharingPolicy::FaST,
            window: SimTime::from_secs(1),
            token_lease: SimTime::from_millis(500),
            strict_admission: true,
            ..BackendConfig::default()
        });
        // Quota 300ms/window; bursts measure ~200ms.
        b.register(PodId(0), spec(24.0, 0.3, 0.3));
        let RequestOutcome::Granted(_) = req(&mut b, SimTime::ZERO, PodId(0)) else {
            panic!()
        };
        b.begin_burst(PodId(0)).unwrap();
        let out = b.sync_point(t(200), PodId(0), t(200)).unwrap();
        // Lease (500ms) still valid and quota (200 < 300) not exhausted…
        assert!(out.lease_valid);
        b.begin_burst(PodId(0)).unwrap();
        let out = b.sync_point(t(400), PodId(0), t(200)).unwrap();
        // …but now 400ms > 300ms limit: blocked to the next window.
        assert!(!out.lease_valid);
        assert_eq!(
            req(&mut b, t(400), PodId(0)),
            RequestOutcome::BlockedUntilReset
        );
        // After the reset, q_used = 0: strict admission still grants
        // (fresh-window progress guarantee) even though one estimated
        // burst (200ms) fits 300ms anyway.
        let grants = b.on_window_reset(t(1000));
        assert_eq!(grants.len(), 1);
        b.begin_burst(PodId(0)).unwrap();
        let _ = b.sync_point(t(1200), PodId(0), t(200)).unwrap();
        // q_used = 200, estimate ~200: 200 + 200 > 300 → strict admission
        // defers the pod to the next window instead of letting it overrun.
        let outcome = req(&mut b, t(1200), PodId(0));
        assert_eq!(outcome, RequestOutcome::Queued);
        assert_eq!(b.holders(), 0);
        // The next reset re-admits it.
        let grants = b.on_window_reset(t(2000));
        assert_eq!(grants.len(), 1);
    }

    #[test]
    fn adaptive_lease_follows_estimate() {
        let mut b = FastBackend::new(BackendConfig {
            policy: SharingPolicy::FaST,
            window: SimTime::from_secs(1),
            token_lease: SimTime::from_millis(100),
            adaptive_lease: true,
            ..BackendConfig::default()
        });
        b.register(PodId(0), spec(24.0, 1.0, 1.0));
        // First grant: no estimate yet → full lease.
        let RequestOutcome::Granted(g) = req(&mut b, SimTime::ZERO, PodId(0)) else {
            panic!()
        };
        assert_eq!(g.expires, t(100));
        b.begin_burst(PodId(0)).unwrap();
        // Burn past the lease so it is re-acquired with an estimate.
        let _ = b.sync_point(t(150), PodId(0), t(2)).unwrap();
        let RequestOutcome::Granted(g) = req(&mut b, t(150), PodId(0)) else {
            panic!()
        };
        // Estimate 2ms → lease 4 × 2 = 8ms.
        assert_eq!(g.expires, t(150) + t(8));
    }

    #[test]
    fn operations_on_deregistered_pod_return_error_not_panic() {
        let mut b = fast_backend(5);
        b.register(PodId(0), spec(24.0, 1.0, 1.0));
        assert!(matches!(
            req(&mut b, SimTime::ZERO, PodId(0)),
            RequestOutcome::Granted(_)
        ));
        // A crash force-deregisters the pod while its hook still holds a
        // token; every subsequent backend call must degrade gracefully.
        b.force_deregister(t(1), PodId(0));
        let ghost = PodId(0);
        assert_eq!(
            b.request(t(2), ghost).unwrap_err(),
            BackendError::UnknownPod(ghost)
        );
        assert_eq!(
            b.begin_burst(ghost).unwrap_err(),
            BackendError::UnknownPod(ghost)
        );
        assert_eq!(
            b.sync_point(t(2), ghost, t(1)).unwrap_err(),
            BackendError::UnknownPod(ghost)
        );
        // Never-registered pods behave identically, also under non-token
        // policies (the racing path used to panic in entry_mut).
        let mut racing = FastBackend::new(BackendConfig {
            policy: SharingPolicy::Racing,
            ..BackendConfig::default()
        });
        assert_eq!(
            racing.request(SimTime::ZERO, PodId(7)).unwrap_err(),
            BackendError::UnknownPod(PodId(7))
        );
        // Tolerant paths stay tolerant.
        assert!(b.release_idle(t(3), ghost).is_empty());
        assert!(b.on_lease_timer(t(3), ghost, 0).is_empty());
    }

    #[test]
    fn quota_state_reflects_configuration() {
        let mut b = fast_backend(5);
        b.register(PodId(0), spec(12.0, 0.3, 0.8));
        let qs = b.quota_state(PodId(0)).unwrap();
        assert_eq!(qs.q_request, t(300));
        assert_eq!(qs.q_limit, t(800));
        assert_eq!(qs.q_used, SimTime::ZERO);
        assert!(!qs.holds_token);
        assert_eq!(qs.sm_partition, 12.0);
    }
}
