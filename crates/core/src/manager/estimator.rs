//! Kernel-burst estimation (Gemini's mechanism, §3.3.2 of the paper's
//! lineage): the backend learns how much GPU time a pod's bursts take and
//! uses the estimate to size token leases and, optionally, to refuse
//! grants that would overrun the pod's remaining quota.

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::SimTime;

/// Exponentially weighted estimate of a pod's kernel-burst GPU time.
///
/// Gemini estimates the "kernel burst" — the GPU time between two
/// synchronization points — to pick token lengths that neither overrun
/// quotas nor thrash on token IPC. The estimator tracks both the mean and
/// a pessimistic bound (mean + spread) so admission can be conservative.
#[derive(Debug, Clone, Copy)]
pub struct BurstEstimator {
    alpha: f64,
    mean_us: f64,
    /// Mean absolute deviation, smoothed with the same alpha.
    dev_us: f64,
    observations: u64,
}

impl BurstEstimator {
    /// Creates an estimator with smoothing factor `alpha` (0 < alpha ≤ 1).
    pub fn new(alpha: f64) -> Self {
        debug_assert!(alpha > 0.0 && alpha <= 1.0, "bad alpha {alpha}");
        let alpha = if alpha.is_finite() && alpha > 0.0 { alpha.min(1.0) } else { 1.0 };
        BurstEstimator {
            alpha,
            mean_us: 0.0,
            dev_us: 0.0,
            observations: 0,
        }
    }

    /// Default smoothing used by the backend.
    pub fn default_alpha() -> f64 {
        0.25
    }

    /// Records one observed burst.
    pub fn observe(&mut self, burst: SimTime) {
        let x = burst.as_micros() as f64;
        if self.observations == 0 {
            self.mean_us = x;
            self.dev_us = 0.0;
        } else {
            let err = x - self.mean_us;
            self.mean_us += self.alpha * err;
            self.dev_us += self.alpha * (err.abs() - self.dev_us);
        }
        self.observations += 1;
    }

    /// The smoothed mean burst, or `None` before any observation.
    pub fn mean(&self) -> Option<SimTime> {
        if self.observations == 0 {
            None
        } else {
            Some(SimTime::from_micros_f64(self.mean_us))
        }
    }

    /// A pessimistic burst bound: mean + 2 × deviation.
    pub fn upper(&self) -> Option<SimTime> {
        if self.observations == 0 {
            None
        } else {
            Some(SimTime::from_micros_f64(self.mean_us + 2.0 * self.dev_us))
        }
    }

    /// Number of bursts observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

impl Snap for BurstEstimator {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            alpha,
            mean_us,
            dev_us,
            observations,
        } = self;
        alpha.snap(w);
        mean_us.snap(w);
        dev_us.snap(w);
        w.u64(*observations);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let alpha = f64::unsnap(r)?;
        if !(alpha.is_finite() && alpha > 0.0 && alpha <= 1.0) {
            return Err(SnapError::new("estimator alpha"));
        }
        Ok(BurstEstimator {
            alpha,
            mean_us: f64::unsnap(r)?,
            dev_us: f64::unsnap(r)?,
            observations: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_snaps() {
        let mut e = BurstEstimator::new(0.25);
        assert_eq!(e.mean(), None);
        assert_eq!(e.upper(), None);
        e.observe(SimTime::from_micros(1_000));
        assert_eq!(e.mean(), Some(SimTime::from_micros(1_000)));
        assert_eq!(e.upper(), Some(SimTime::from_micros(1_000)));
    }

    #[test]
    fn converges_to_steady_burst() {
        let mut e = BurstEstimator::new(0.25);
        for _ in 0..50 {
            e.observe(SimTime::from_micros(2_000));
        }
        let m = e.mean().unwrap().as_micros();
        assert_eq!(m, 2_000);
        // Steady input: deviation decays toward zero.
        assert!(e.upper().unwrap().as_micros() < 2_100);
    }

    #[test]
    fn tracks_level_shift() {
        let mut e = BurstEstimator::new(0.25);
        for _ in 0..20 {
            e.observe(SimTime::from_micros(1_000));
        }
        for _ in 0..20 {
            e.observe(SimTime::from_micros(5_000));
        }
        let m = e.mean().unwrap().as_micros();
        assert!(m > 4_500, "mean {m} should approach 5000");
    }

    #[test]
    fn upper_exceeds_mean_under_variance() {
        let mut e = BurstEstimator::new(0.25);
        for i in 0..40 {
            let v = if i % 2 == 0 { 1_000 } else { 3_000 };
            e.observe(SimTime::from_micros(v));
        }
        assert!(e.upper().unwrap() > e.mean().unwrap());
        assert_eq!(e.observations(), 40);
    }

    #[test]
    #[should_panic(expected = "bad alpha")]
    fn zero_alpha_rejected() {
        BurstEstimator::new(0.0);
    }
}
