//! FaST-Manager: the spatio-temporal GPU sharing manager (paper §3.3).
//!
//! The manager limits, prioritizes and isolates GPU usage in both
//! dimensions through a frontend–backend architecture:
//!
//! * the **frontend** is the CUDA hook library inside each function
//!   container. In this reproduction the platform event loop plays that
//!   role: before every kernel burst (the region between two
//!   synchronization points) it asks the backend for a *time token*, and at
//!   every sync it reports the GPU time the burst consumed (the
//!   Gemini-style event-based usage monitor).
//! * the **backend** ([`FastBackend`]) owns the pod table
//!   (`Q_used`/`Q_request`/`Q_limit`/`S_SMs`) and the **multi-token
//!   scheduler**: filtering (pods over their `Q_limit` are blocked until
//!   the next window), the Ready-function Priority Queue ordered by
//!   `Q_miss = Q_request − Q_used` descending, and the **SM Allocation
//!   Adapter** that keeps the sum of token-holding pods' SM partitions at
//!   or below `SM_GLOBAL_LIMIT` (100 %).
//!
//! Tokens are *leases*: a granted pod may launch kernel bursts until the
//! lease expires or its quota runs out, whichever comes first. Lease
//! duration amortizes the token-request IPC, exactly like Gemini's
//! token length; the configurable duration is an ablation knob
//! ([`BackendConfig::token_lease`]).
//!
//! The same state machine implements all four sharing policies compared in
//! the paper's evaluation — see [`SharingPolicy`].

mod backend;
mod estimator;
mod policy;

pub use backend::{
    BackendConfig, BackendError, DispatchOrder, FastBackend, Grant, PodClass, PodQuotaState,
    RequestOutcome, SyncOutcome,
};
pub use estimator::BurstEstimator;
pub use policy::{SchedPolicy, SharingPolicy};
