//! The GPU sharing policies compared in the paper's evaluation.

use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// How a node's GPU is shared among function pods.
///
/// These are the four mechanisms §5 compares:
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPolicy {
    /// Kubernetes device plugin: one pod owns the whole GPU (Figure 1a).
    /// No MPS, no tokens.
    Exclusive,
    /// Time sharing à la Gemini/KubeShare (Figure 1b and the "time
    /// sharing" comparator throughout §5): quota-managed, but at most one
    /// pod holds the token at a time and every pod runs un-partitioned
    /// (100 % SMs). The GPU idles during the holder's host-side gaps,
    /// which caps aggregate throughput at a single racing pod's.
    SingleToken,
    /// MPS over-subscription without temporal control ("racing" in §5.3):
    /// every pod launches whenever it likes, kernels contend for SMs.
    Racing,
    /// FaST-GShare: multi-token temporal scheduling + MPS spatial
    /// partitions, coordinated by the SM Allocation Adapter.
    FaST,
}

impl SharingPolicy {
    /// Whether pods under this policy go through the token protocol.
    pub fn uses_tokens(self) -> bool {
        matches!(self, SharingPolicy::SingleToken | SharingPolicy::FaST)
    }

    /// Whether MPS spatial partitions are honoured (otherwise every pod is
    /// registered at 100 % active threads).
    pub fn uses_partitions(self) -> bool {
        matches!(self, SharingPolicy::FaST | SharingPolicy::Racing)
    }

    /// The SM share the allocation adapter charges for a pod with spec
    /// partition `sm_partition`: under `SingleToken` every holder is
    /// charged the full GPU, which reduces the multi-token scheduler to
    /// exactly one token in flight.
    pub fn adapter_share(self, sm_partition: f64) -> f64 {
        match self {
            SharingPolicy::SingleToken => 100.0,
            _ => sm_partition,
        }
    }
}

impl std::fmt::Display for SharingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SharingPolicy::Exclusive => "exclusive",
            SharingPolicy::SingleToken => "time-sharing",
            SharingPolicy::Racing => "racing",
            SharingPolicy::FaST => "fast-gshare",
        };
        f.write_str(s)
    }
}

/// Which placement engine drives node selection and rectangle packing —
/// the scheduler arena's policy axis, orthogonal to [`SharingPolicy`]
/// (which governs the *per-GPU* token/partition mechanism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SchedPolicy {
    /// The paper's Algorithm 1/2 over the maximal-rects reference
    /// allocator (`GpuRects`) — the digest-pinned default.
    Paper,
    /// The same best-area-fit intent over the guillotine free-list
    /// allocator with a bucketed free-capacity node index: O(log)-ish
    /// placement under churn.
    FastPath,
    /// ParvaGPU-style demand matching: demands are quantized up to MIG
    /// compute-slice percents (SM axis) and MPS 5 % quota segments
    /// (quota axis), then matched tightest-class-first.
    DemandMatch,
    /// Tally-style priority co-location: latency-critical pods (no
    /// elastic quota headroom) spread to the least-loaded GPU; best-effort
    /// pods pack onto the busiest.
    PriorityColocate,
}

impl SchedPolicy {
    /// Whether this policy runs on the guillotine arena (everything but
    /// the digest-pinned paper reference).
    pub fn uses_arena(self) -> bool {
        !matches!(self, SchedPolicy::Paper)
    }

    /// Parses the `FASTG_SCHED` environment value. Unknown values fall
    /// back to the paper reference so a typo can never silently change
    /// digests to a non-pinned family.
    pub fn from_env_value(value: &str) -> Self {
        match value.trim().to_ascii_lowercase().as_str() {
            "fast" | "fastpath" | "guillotine" => SchedPolicy::FastPath,
            "demand" | "demand-match" | "parvagpu" => SchedPolicy::DemandMatch,
            "priority" | "colocate" | "tally" => SchedPolicy::PriorityColocate,
            _ => SchedPolicy::Paper,
        }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedPolicy::Paper => "paper-algo1",
            SchedPolicy::FastPath => "fast-path",
            SchedPolicy::DemandMatch => "demand-match",
            SchedPolicy::PriorityColocate => "priority-colocate",
        };
        f.write_str(s)
    }
}

impl Snap for SharingPolicy {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            SharingPolicy::Exclusive => 0,
            SharingPolicy::SingleToken => 1,
            SharingPolicy::Racing => 2,
            SharingPolicy::FaST => 3,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => SharingPolicy::Exclusive,
            1 => SharingPolicy::SingleToken,
            2 => SharingPolicy::Racing,
            3 => SharingPolicy::FaST,
            _ => return Err(SnapError::new("sharing policy tag")),
        })
    }
}

impl Snap for SchedPolicy {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            SchedPolicy::Paper => 0,
            SchedPolicy::FastPath => 1,
            SchedPolicy::DemandMatch => 2,
            SchedPolicy::PriorityColocate => 3,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => SchedPolicy::Paper,
            1 => SchedPolicy::FastPath,
            2 => SchedPolicy::DemandMatch,
            3 => SchedPolicy::PriorityColocate,
            _ => return Err(SnapError::new("sched policy tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_and_partition_matrix() {
        assert!(!SharingPolicy::Exclusive.uses_tokens());
        assert!(SharingPolicy::SingleToken.uses_tokens());
        assert!(!SharingPolicy::Racing.uses_tokens());
        assert!(SharingPolicy::FaST.uses_tokens());

        assert!(!SharingPolicy::Exclusive.uses_partitions());
        assert!(!SharingPolicy::SingleToken.uses_partitions());
        assert!(SharingPolicy::Racing.uses_partitions());
        assert!(SharingPolicy::FaST.uses_partitions());
    }

    #[test]
    fn single_token_charges_full_gpu() {
        assert_eq!(SharingPolicy::SingleToken.adapter_share(12.0), 100.0);
        assert_eq!(SharingPolicy::FaST.adapter_share(12.0), 12.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(SharingPolicy::FaST.to_string(), "fast-gshare");
        assert_eq!(SharingPolicy::SingleToken.to_string(), "time-sharing");
    }

    #[test]
    fn sched_policy_env_parsing_defaults_to_paper() {
        assert_eq!(SchedPolicy::from_env_value("fast"), SchedPolicy::FastPath);
        assert_eq!(
            SchedPolicy::from_env_value(" Guillotine "),
            SchedPolicy::FastPath
        );
        assert_eq!(
            SchedPolicy::from_env_value("demand"),
            SchedPolicy::DemandMatch
        );
        assert_eq!(
            SchedPolicy::from_env_value("tally"),
            SchedPolicy::PriorityColocate
        );
        assert_eq!(SchedPolicy::from_env_value("paper"), SchedPolicy::Paper);
        assert_eq!(SchedPolicy::from_env_value("bogus"), SchedPolicy::Paper);
        assert!(!SchedPolicy::Paper.uses_arena());
        assert!(SchedPolicy::FastPath.uses_arena());
        assert_eq!(SchedPolicy::DemandMatch.to_string(), "demand-match");
    }
}
