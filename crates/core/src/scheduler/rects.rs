//! The Maximal Rectangles Algorithm (paper Algorithm 2) over one GPU's
//! spatio-temporal resource rectangle.
//!
//! The GPU is a `W × H = 100 % quota × 100 % SMs` rectangle. Free space is
//! a list of *maximal* free rectangles — they may overlap each other, but
//! none may overlap a placed pod, and none may be contained in another.
//! Placement picks the free rectangle with the smallest "secondCores"
//! slack (`Area(R) − Area(F)`), places the pod at its bottom-left corner,
//! splits, updates intersections by subdividing every other free rectangle
//! that the pod now overlaps, and prunes redundancies.

use fastg_cluster::PodId;
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
// The reference allocator keeps its pod bindings in an ordered tree: it
// is the differential-testing baseline, not a fleet hot path (the fast
// path is `scheduler::guillotine`). fastg-lint: allow(no-btreemap-hot-path)
use std::collections::BTreeMap;

/// The single validated path for allocator constructor parameters: flags
/// a degenerate (zero) dimension or threshold in debug builds and clamps
/// it to one unit in release builds. Every spatial-allocator constructor
/// (`GpuRects`, `GuillotineAlloc`) funnels through this.
pub(crate) fn at_least_one<T: Ord + From<u8>>(value: T, what: &'static str) -> T {
    debug_assert!(value >= T::from(1u8), "degenerate {what}");
    value.max(T::from(1u8))
}

/// An axis-aligned rectangle in resource units. `x`/`w` run along the time
/// quota axis (percent of the scheduling window), `y`/`h` along the SM
/// axis (percent of SMs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge (quota axis).
    pub x: u32,
    /// Bottom edge (SM axis).
    pub y: u32,
    /// Width (quota percent).
    pub w: u32,
    /// Height (SM percent).
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Rect { x, y, w, h }
    }

    /// The paper's "secondCores" measure: `quota × SMs`.
    pub fn area(&self) -> u64 {
        u64::from(self.w) * u64::from(self.h)
    }

    /// Right edge (exclusive).
    pub fn right(&self) -> u32 {
        self.x + self.w
    }

    /// Top edge (exclusive).
    pub fn top(&self) -> u32 {
        self.y + self.h
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.x <= other.x
            && self.y <= other.y
            && self.right() >= other.right()
            && self.top() >= other.top()
    }

    /// Whether the interiors overlap (shared edges don't count).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.top()
            && other.y < self.top()
    }

    /// A pod of size `w × h` fits in this free rectangle.
    pub fn fits(&self, w: u32, h: u32) -> bool {
        self.w >= w && self.h >= h
    }
}

/// Removes every part of `f` from `free` by subdividing intersecting
/// rectangles into up to four *maximal* remainders (left/right strips at
/// full height, bottom/top strips at full width — the MAXRECTS
/// `Subdivide(R, I)` step). Shared by [`GpuRects`] and the guillotine
/// allocator's exact-feasibility fallback.
pub(crate) fn subtract_maximal(free: &mut Vec<Rect>, f: &Rect) {
    let mut out = Vec::with_capacity(free.len() + 4);
    for r in free.drain(..) {
        if !r.intersects(f) {
            out.push(r);
            continue;
        }
        if f.x > r.x {
            out.push(Rect::new(r.x, r.y, f.x - r.x, r.h));
        }
        if f.right() < r.right() {
            out.push(Rect::new(f.right(), r.y, r.right() - f.right(), r.h));
        }
        if f.y > r.y {
            out.push(Rect::new(r.x, r.y, r.w, f.y - r.y));
        }
        if f.top() < r.top() {
            out.push(Rect::new(r.x, f.top(), r.w, r.top() - f.top()));
        }
    }
    *free = out;
}

/// Removes rectangles contained in other rectangles of the same list
/// (the MAXRECTS redundancy prune).
pub(crate) fn prune_contained(free: &mut Vec<Rect>) {
    let mut keep = vec![true; free.len()];
    for i in 0..free.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..free.len() {
            if i == j || !keep[j] {
                continue;
            }
            if free[j].contains(&free[i]) {
                keep[i] = false;
                break;
            }
        }
    }
    let mut idx = 0;
    free.retain(|_| {
        let kept = keep.get(idx).copied().unwrap_or(true);
        idx += 1;
        kept
    });
}

/// The exact set of maximal free rectangles of a `width × height` plane
/// minus `placements`: the ground truth every allocator's accept/reject
/// decision can be checked against (a `w × h` demand is geometrically
/// feasible iff it fits in one of these).
pub(crate) fn maximal_free_rects(width: u32, height: u32, placements: &[Rect]) -> Vec<Rect> {
    let mut free = vec![Rect::new(0, 0, width, height)];
    for f in placements {
        subtract_maximal(&mut free, f);
    }
    prune_contained(&mut free);
    free
}

/// Which free rectangle a placement prefers (MAXRECTS literature's
/// classic heuristics). The paper uses best-area-fit: minimal
/// "secondCores" slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitRule {
    /// Minimum `Area(R) − Area(F)` (the paper's rule).
    BestAreaFit,
    /// Minimum leftover along the rectangle's tighter dimension
    /// (MAXRECTS-BSSF, usually the strongest generic heuristic).
    BestShortSideFit,
    /// Lowest `y`, then lowest `x` (classic bottom-left; the ablation
    /// baseline).
    BottomLeft,
}

/// Algorithm 2's per-GPU state: the free-rectangle list and pod bindings.
///
/// ```
/// use fastgshare::scheduler::GpuRects;
/// use fastg_cluster::PodId;
///
/// let mut gpu = GpuRects::standard(); // 100 % quota × 100 % SMs
/// // A ResNet pod at (40 % quota, 12 % SMs):
/// let rect = gpu.place(PodId(0), 40, 12).unwrap();
/// assert_eq!((rect.x, rect.y), (0, 0)); // bottom-left placement
/// assert_eq!(gpu.free_area(), 10_000 - 480);
/// // Releasing returns the exact rectangle (keep-restructure policy).
/// assert_eq!(gpu.release(PodId(0)), Some(rect));
/// assert_eq!(gpu.free_area(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct GpuRects {
    width: u32,
    height: u32,
    free: Vec<Rect>,
    placed: BTreeMap<PodId, Rect>,
    /// Free-list length beyond which [`Self::restructure`] is invoked by
    /// [`Self::release`] (the keep-restructure policy's threshold).
    restructure_threshold: usize,
    restructures: u64,
    fit_rule: FitRule,
}

impl GpuRects {
    /// A fresh GPU: one free rectangle of `width × height` (defaults to
    /// 100 × 100 percent), using the paper's best-area-fit rule.
    pub fn new(width: u32, height: u32, restructure_threshold: usize) -> Self {
        Self::with_rule(width, height, restructure_threshold, FitRule::BestAreaFit)
    }

    /// A fresh GPU with an explicit fit rule (ablation constructor).
    pub fn with_rule(
        width: u32,
        height: u32,
        restructure_threshold: usize,
        fit_rule: FitRule,
    ) -> Self {
        let width = at_least_one(width, "GPU rectangle width");
        let height = at_least_one(height, "GPU rectangle height");
        let restructure_threshold = at_least_one(restructure_threshold, "restructure threshold");
        GpuRects {
            width,
            height,
            free: vec![Rect::new(0, 0, width, height)],
            placed: BTreeMap::new(),
            restructure_threshold,
            restructures: 0,
            fit_rule,
        }
    }

    /// The standard paper-sized GPU rectangle.
    pub fn standard() -> Self {
        Self::new(100, 100, 24)
    }

    /// The configured fit rule.
    pub fn fit_rule(&self) -> FitRule {
        self.fit_rule
    }

    /// Total capacity ("secondCores").
    pub fn capacity(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Area currently bound to pods.
    pub fn used_area(&self) -> u64 {
        self.placed.values().map(Rect::area).sum()
    }

    /// Unbound area (exact; free rectangles overlap so they cannot simply
    /// be summed).
    pub fn free_area(&self) -> u64 {
        self.capacity() - self.used_area()
    }

    /// The largest single free rectangle's area: the biggest pod that
    /// could be placed right now. `free_area − largest` is fragmentation.
    pub fn largest_free_area(&self) -> u64 {
        self.free.iter().map(Rect::area).max().unwrap_or(0)
    }

    /// Fragmentation in `[0, 1]`: the fraction of free area not reachable
    /// by the single largest placement. Zero when empty or perfectly
    /// consolidated.
    pub fn fragmentation(&self) -> f64 {
        // Zero-capacity geometry cannot be constructed (the validated
        // constructor clamps), but the metric must stay total anyway:
        // an empty plane is trivially unfragmented, never a 0/0.
        let free = self.free_area();
        if self.capacity() == 0 || free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_area() as f64 / free as f64
    }

    /// The current free-rectangle list.
    pub fn free_rects(&self) -> &[Rect] {
        &self.free
    }

    /// The rectangle bound to `pod`, if any.
    pub fn placement_of(&self, pod: PodId) -> Option<Rect> {
        self.placed.get(&pod).copied()
    }

    /// Every `(pod, rectangle)` binding, in ascending pod order.
    pub fn placements(&self) -> impl Iterator<Item = (PodId, Rect)> + '_ {
        self.placed.iter().map(|(&p, &r)| (p, r))
    }

    /// Pods currently bound.
    pub fn pod_count(&self) -> usize {
        self.placed.len()
    }

    /// Times the keep-restructure policy rebuilt the free list.
    pub fn restructure_count(&self) -> u64 {
        self.restructures
    }

    /// The best free rectangle for a `w × h` pod under the configured fit
    /// rule, ties broken bottom-left-most for determinism. Returns the
    /// rectangle and its area slack (the "secondCores" difference the
    /// global node selection compares).
    pub fn best_fit(&self, w: u32, h: u32) -> Option<(Rect, u64)> {
        let key = |r: &Rect| -> (u64, u32, u32) {
            match self.fit_rule {
                FitRule::BestAreaFit => (r.area() - u64::from(w) * u64::from(h), r.y, r.x),
                FitRule::BestShortSideFit => {
                    let short = u64::from((r.w - w).min(r.h - h));
                    (short, r.y, r.x)
                }
                FitRule::BottomLeft => (0, r.y, r.x),
            }
        };
        self.free
            .iter()
            .filter(|r| r.fits(w, h))
            .min_by_key(|r| key(r))
            .map(|r| (*r, r.area() - u64::from(w) * u64::from(h)))
    }

    /// Places `pod` (size `w × h`) using Algorithm 2. Returns its bound
    /// rectangle, or `None` when no free rectangle fits ("a new GPU
    /// required").
    pub fn place(&mut self, pod: PodId, w: u32, h: u32) -> Option<Rect> {
        debug_assert!(w > 0 && h > 0, "degenerate pod rectangle");
        let w = w.max(1);
        let h = h.max(1);
        if self.placed.contains_key(&pod) {
            debug_assert!(false, "pod {pod:?} already placed on this GPU");
            return None;
        }
        let (target, _slack) = self.best_fit(w, h)?;
        // PlaceAndNewJointRect, "BottomLeft": the pod sits at the target's
        // bottom-left corner.
        let f = Rect::new(target.x, target.y, w, h);
        // Split the chosen rectangle into the two *maximal* remainders:
        // full-height right part and full-width top part.
        self.free.retain(|r| *r != target);
        let right = Rect::new(f.right(), target.y, target.right() - f.right(), target.h);
        let top = Rect::new(target.x, f.top(), target.w, target.top() - f.top());
        if right.area() > 0 {
            self.free.push(right);
        }
        if top.area() > 0 {
            self.free.push(top);
        }
        // Intersection update: free rectangles are not mutually exclusive,
        // so others may still cover the pod's area — subdivide them.
        self.subtract_from_free(&f);
        self.prune();
        self.placed.insert(pod, f);
        self.debug_check();
        Some(f)
    }

    /// Removes every part of `f` from the free list by subdividing
    /// intersecting rectangles into up to four maximal remainders.
    fn subtract_from_free(&mut self, f: &Rect) {
        subtract_maximal(&mut self.free, f);
    }

    /// Removes free rectangles contained in other free rectangles.
    fn prune(&mut self) {
        prune_contained(&mut self.free);
    }

    /// Binds `pod` at an exact, caller-chosen position. Accepts iff the
    /// rectangle lies in bounds and overlaps no current placement (true
    /// geometric feasibility, independent of the incremental free-list
    /// state). This is the differential-testing hook: driving two
    /// allocators with *identical positions* keeps their placement sets —
    /// and therefore all future accept/reject decisions — comparable.
    pub fn place_at(&mut self, pod: PodId, rect: Rect) -> bool {
        if rect.w == 0 || rect.h == 0 || self.placed.contains_key(&pod) {
            return false;
        }
        let bounds = Rect::new(0, 0, self.width, self.height);
        if !bounds.contains(&rect) || self.placed.values().any(|p| p.intersects(&rect)) {
            return false;
        }
        self.subtract_from_free(&rect);
        self.prune();
        self.placed.insert(pod, rect);
        self.debug_check();
        true
    }

    /// Releases a pod's rectangle under the **keep-restructure** policy:
    /// the exact rectangle returns to the free list (so the same function
    /// can reclaim the same resources), and once the list exceeds the
    /// threshold the whole free space is rebuilt from scratch.
    pub fn release(&mut self, pod: PodId) -> Option<Rect> {
        let r = self.placed.remove(&pod)?;
        self.free.push(r);
        self.prune();
        if self.free.len() > self.restructure_threshold {
            self.restructure();
        }
        self.debug_check();
        Some(r)
    }

    /// Rebuilds the maximal free-rectangle list around the *current* pod
    /// placements (running pods are never moved): reset to the full GPU
    /// rectangle and subtract every placement.
    pub fn restructure(&mut self) {
        self.free = vec![Rect::new(0, 0, self.width, self.height)];
        let placements: Vec<Rect> = self.placed.values().copied().collect();
        for f in &placements {
            self.subtract_from_free(f);
        }
        self.prune();
        self.restructures += 1;
        self.debug_check();
    }

    /// Invariants, checked in debug builds after every mutation:
    /// free rectangles stay in bounds, never overlap a placement, and are
    /// mutually maximal; placements never overlap each other.
    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        {
            let bounds = Rect::new(0, 0, self.width, self.height);
            for r in &self.free {
                assert!(bounds.contains(r), "free rect {r:?} out of bounds");
                for p in self.placed.values() {
                    assert!(!r.intersects(p), "free rect {r:?} overlaps placement {p:?}");
                }
            }
            for (i, a) in self.free.iter().enumerate() {
                for (j, b) in self.free.iter().enumerate() {
                    if i != j {
                        assert!(!b.contains(a), "free rect {a:?} contained in {b:?}");
                    }
                }
            }
            let placements: Vec<&Rect> = self.placed.values().collect();
            for (i, a) in placements.iter().enumerate() {
                for b in placements.iter().skip(i + 1) {
                    assert!(!a.intersects(b), "placements {a:?} and {b:?} overlap");
                }
            }
        }
    }
}

impl Snap for Rect {
    fn snap(&self, w: &mut SnapWriter) {
        let Self { x, y, w: rw, h } = self;
        w.u32(*x);
        w.u32(*y);
        w.u32(*rw);
        w.u32(*h);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Rect {
            x: r.u32()?,
            y: r.u32()?,
            w: r.u32()?,
            h: r.u32()?,
        })
    }
}

impl Snap for FitRule {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            FitRule::BestAreaFit => 0,
            FitRule::BestShortSideFit => 1,
            FitRule::BottomLeft => 2,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => FitRule::BestAreaFit,
            1 => FitRule::BestShortSideFit,
            2 => FitRule::BottomLeft,
            _ => return Err(SnapError::new("fit rule tag")),
        })
    }
}

impl Snap for GpuRects {
    /// The free list is encoded in its exact in-memory order: MAXRECTS
    /// tie-breaks scan it linearly, so a reordered list could pick a
    /// different (equally valid) rectangle and diverge from the
    /// straight-through run.
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            width,
            height,
            free,
            placed,
            restructure_threshold,
            restructures,
            fit_rule,
        } = self;
        w.u32(*width);
        w.u32(*height);
        free.snap(w);
        placed.snap(w);
        w.len_prefix(*restructure_threshold);
        w.u64(*restructures);
        fit_rule.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let width = r.u32()?;
        let height = r.u32()?;
        if width == 0 || height == 0 {
            return Err(SnapError::new("gpu rects geometry"));
        }
        let free: Vec<Rect> = Vec::unsnap(r)?;
        let placed: BTreeMap<PodId, Rect> = BTreeMap::unsnap(r)?;
        let bounds = Rect::new(0, 0, width, height);
        if free
            .iter()
            .any(|f| !bounds.contains(f) || placed.values().any(|p| p.intersects(f)))
        {
            return Err(SnapError::new("gpu rects free list"));
        }
        let plc: Vec<&Rect> = placed.values().collect();
        if plc
            .iter()
            .enumerate()
            .any(|(i, a)| plc.iter().skip(i + 1).any(|b| a.intersects(b)))
        {
            return Err(SnapError::new("gpu rects placements overlap"));
        }
        Ok(GpuRects {
            width,
            height,
            free,
            placed,
            restructure_threshold: r.len_prefix()?.max(1),
            restructures: r.u64()?,
            fit_rule: FitRule::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        let c = Rect::new(10, 0, 5, 5);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c)); // edge contact only
        assert!(a.contains(&Rect::new(2, 2, 3, 3)));
        assert!(!a.contains(&b));
        assert_eq!(a.area(), 100);
        assert!(a.fits(10, 10));
        assert!(!a.fits(11, 10));
    }

    #[test]
    fn first_placement_splits_into_two_maximal_rects() {
        let mut g = GpuRects::standard();
        let r = g.place(PodId(1), 40, 12).unwrap();
        assert_eq!(r, Rect::new(0, 0, 40, 12));
        // Maximal remainders: right (40,0,60,100) and top (0,12,100,88).
        assert_eq!(g.free_rects().len(), 2);
        assert!(g.free_rects().contains(&Rect::new(40, 0, 60, 100)));
        assert!(g.free_rects().contains(&Rect::new(0, 12, 100, 88)));
        assert_eq!(g.used_area(), 480);
        assert_eq!(g.free_area(), 10_000 - 480);
    }

    #[test]
    fn best_fit_minimizes_second_cores_slack() {
        let mut g = GpuRects::standard();
        g.place(PodId(1), 60, 100).unwrap(); // leaves (60,0,40,100)
        // A 40×40 pod: only the right rect fits.
        let (r, slack) = g.best_fit(40, 40).unwrap();
        assert_eq!(r, Rect::new(60, 0, 40, 100));
        assert_eq!(slack, 4000 - 1600);
    }

    #[test]
    fn paper_fig11_pod_set_fits_one_gpu() {
        // 4×ResNet (40,12) + 2×RNNT (40,24) + 2×BERT (60,50):
        // total area 4×480 + 2×960 + 2×3000 = 9840 ≤ 10000. Placed in
        // descending area order, as the FaST-Scheduler submits them.
        let mut g = GpuRects::standard();
        let mut id = 0;
        for _ in 0..2 {
            assert!(g.place(PodId(id), 60, 50).is_some(), "bert {id}");
            id += 1;
        }
        for _ in 0..2 {
            assert!(g.place(PodId(id), 40, 24).is_some(), "rnnt {id}");
            id += 1;
        }
        for _ in 0..4 {
            assert!(g.place(PodId(id), 40, 12).is_some(), "resnet {id}");
            id += 1;
        }
        assert_eq!(g.pod_count(), 8);
        assert_eq!(g.used_area(), 9840);
    }

    #[test]
    fn place_fails_when_nothing_fits() {
        let mut g = GpuRects::standard();
        g.place(PodId(1), 100, 60).unwrap();
        // 50 × 50 cannot fit in the remaining 100 × 40 strip.
        assert!(g.place(PodId(2), 50, 50).is_none());
        // But 100 × 40 does.
        assert!(g.place(PodId(2), 100, 40).is_some());
    }

    #[test]
    fn release_returns_exact_rectangle_for_reuse() {
        let mut g = GpuRects::standard();
        let r1 = g.place(PodId(1), 30, 30).unwrap();
        g.place(PodId(2), 30, 30).unwrap();
        let released = g.release(PodId(1)).unwrap();
        assert_eq!(released, r1);
        // The same shape lands back in the same spot (best fit: zero
        // slack).
        let r3 = g.place(PodId(3), 30, 30).unwrap();
        assert_eq!(r3, r1);
    }

    #[test]
    fn restructure_triggers_past_threshold() {
        let mut g = GpuRects::new(100, 100, 4);
        // Fill a row with small pods, then free alternating ones to
        // fragment the list past the threshold.
        for i in 0..10 {
            g.place(PodId(i), 10, 10).unwrap();
        }
        for i in (0..10).step_by(2) {
            g.release(PodId(i)).unwrap();
        }
        assert!(g.restructure_count() >= 1);
        // After restructuring, invariants hold and all freed area is
        // reachable.
        assert_eq!(g.pod_count(), 5);
        assert_eq!(g.used_area(), 500);
    }

    #[test]
    fn fragmentation_metric() {
        let mut g = GpuRects::standard();
        assert_eq!(g.fragmentation(), 0.0);
        g.place(PodId(1), 100, 100).unwrap();
        assert_eq!(g.fragmentation(), 0.0); // nothing free at all
        g.release(PodId(1));
        assert_eq!(g.fragmentation(), 0.0);
        // A quarter-GPU pod leaves an L-shaped free region: the largest
        // single rectangle (50×100 or 100×50 = 5000) covers only 2/3 of
        // the 7500 free secondCores.
        g.place(PodId(2), 50, 50).unwrap();
        assert!((g.fragmentation() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn full_pack_and_unpack_cycle_preserves_capacity() {
        let mut g = GpuRects::standard();
        let sizes = [(40u32, 12u32), (40, 24), (60, 50), (20, 30), (35, 45)];
        for (i, &(w, h)) in sizes.iter().enumerate() {
            g.place(PodId(i as u64), w, h).unwrap();
        }
        for i in 0..sizes.len() {
            g.release(PodId(i as u64));
        }
        g.restructure();
        assert_eq!(g.free_area(), g.capacity());
        assert_eq!(g.largest_free_area(), g.capacity());
        assert_eq!(g.free_rects().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_place_panics() {
        let mut g = GpuRects::standard();
        g.place(PodId(1), 10, 10).unwrap();
        g.place(PodId(1), 10, 10).unwrap();
    }

    #[test]
    fn release_unknown_pod_is_none() {
        let mut g = GpuRects::standard();
        assert!(g.release(PodId(42)).is_none());
    }

    #[test]
    fn fit_rules_choose_differently() {
        // Free rects after one placement: right (40,0,60,100) and top
        // (0,12,100,88). For a 50×80 pod:
        //  - area slack: right = 6000−4000, top = 8800−4000 → right
        //  - short side: right min(10, 20)=10, top min(50, 8)=8 → top
        let build = |rule| {
            let mut g = GpuRects::with_rule(100, 100, 24, rule);
            g.place(PodId(0), 40, 12).unwrap();
            g
        };
        let (r_area, _) = build(FitRule::BestAreaFit).best_fit(50, 80).unwrap();
        assert_eq!(r_area, Rect::new(40, 0, 60, 100));
        let (r_bssf, _) = build(FitRule::BestShortSideFit).best_fit(50, 80).unwrap();
        assert_eq!(r_bssf, Rect::new(0, 12, 100, 88));
        // Bottom-left prefers the lowest-y rectangle regardless of waste.
        let (r_bl, _) = build(FitRule::BottomLeft).best_fit(50, 80).unwrap();
        assert_eq!(r_bl, Rect::new(40, 0, 60, 100));
    }

    #[test]
    fn all_rules_pack_the_fig11_set() {
        for rule in [
            FitRule::BestAreaFit,
            FitRule::BestShortSideFit,
            FitRule::BottomLeft,
        ] {
            let mut g = GpuRects::with_rule(100, 100, 24, rule);
            let mut id = 0u64;
            for &(w, h, n) in &[(60u32, 50u32, 2u32), (40, 24, 2), (40, 12, 4)] {
                for _ in 0..n {
                    assert!(
                        g.place(PodId(id), w, h).is_some(),
                        "{rule:?} failed at pod {id}"
                    );
                    id += 1;
                }
            }
        }
    }
}
