//! # The scheduler arena: pluggable placement policies over dense slabs
//!
//! PR 8 made the data plane fleet-scale; this module does the same for
//! the *control plane*. Every placement decision — Algorithm 2
//! scale-ups, brownout reconfigures, fault recovery — flows through a
//! [`Scheduler`] trait object, so the paper's Algorithm 1 (the
//! digest-pinned [`NodeSelector`] reference) and the fleet-scale
//! alternatives compete on identical scenario grids:
//!
//! * **[`SchedPolicy::FastPath`]** — the paper's best-area-fit intent
//!   over [`GuillotineAlloc`] planes, with node selection driven by a
//!   [`FreeClassIndex`]: per-node free capacity bucketed into log₂ size
//!   classes over the existing `IdArena` node slabs, updated
//!   incrementally on place/release/crash. A placement probes only the
//!   nodes whose class can possibly fit the demand, walking classes
//!   small-to-large and stopping at the first class that yields a
//!   candidate — O(log nodes)-ish under churn instead of the all-nodes
//!   scan.
//! * **[`SchedPolicy::DemandMatch`]** — ParvaGPU-style: demands are
//!   quantized up to MIG compute-slice percents (SM axis) and MPS 5 %
//!   quota segments (quota axis), then matched tightest-class-first so
//!   equal-shape pods stack into reusable slots.
//! * **[`SchedPolicy::PriorityColocate`]** — Tally-style: latency-
//!   critical pods (no elastic quota headroom) spread to the least-
//!   loaded GPU, best-effort pods pack onto the busiest, so BE kernels
//!   absorb LC idle gaps without inflating LC tail latency.
//!
//! Determinism by construction: every selection reduces to a unique
//! minimum of a total-order key (slack, load, node id), class walks
//! ascend deterministic `IdSet` bitmaps, and no wall-clock or hash-order
//! state exists anywhere in the arena.

use std::cell::Cell;
use std::cmp::Reverse;

use fastg_cluster::{NodeId, PodId, ResourceSpec};
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::{IdArena, IdSet};

use super::guillotine::GuillotineAlloc;
use super::node_select::NodeSelector;
use super::rects::Rect;
use crate::manager::SchedPolicy;

/// Placement-engine counters, uniform across policies so `policy_compare`
/// can tabulate them per grid cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Successful rectangle bindings.
    pub placements: u64,
    /// Rectangle releases.
    pub releases: u64,
    /// Selections that found no feasible node ("a new GPU required").
    pub rejects: u64,
    /// Per-node fit probes performed during selection — the work the
    /// free-capacity index exists to minimize.
    pub probes: u64,
    /// Guillotine placements that needed the exact maximal-rects
    /// fallback (fast path missed a feasible L-shaped fit).
    pub exact_fallbacks: u64,
    /// Guillotine neighbor merges performed on release.
    pub merges: u64,
    /// Full free-list rebuilds (the reference allocator's
    /// keep-restructure policy; always zero for the guillotine arena).
    pub restructures: u64,
}

/// The pluggable placement engine: what `platform::Engine` talks to.
///
/// Split-phase by design (mirroring the reference selector): `select_node`
/// is read-only so the engine can create the pod and learn its id before
/// `bind` mutates rectangle state, and `mem_fits` keeps device-memory
/// feasibility the engine's knowledge, not the scheduler's. Implementors
/// must be deterministic: identical call sequences yield identical
/// decisions, independent of thread count or tie-break perturbations.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Stable policy name for reports.
    fn name(&self) -> &'static str;

    /// Registers a node's GPU (one per node).
    fn add_gpu(&mut self, node: NodeId);

    /// Removes a node's GPU from the placement pool (node crash).
    fn remove_gpu(&mut self, node: NodeId);

    /// Converts a resource spec to (quota %, SM %) rectangle units.
    fn demand_of(&self, spec: &ResourceSpec) -> (u32, u32);

    /// Picks the target node for a demand without mutating state.
    fn select_node(
        &self,
        spec: &ResourceSpec,
        mem_fits: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<NodeId>;

    /// Binds `pod` on a specific node (chosen by `select_node`).
    fn bind(&mut self, node: NodeId, pod: PodId, spec: &ResourceSpec) -> Option<Rect>;

    /// Releases a pod's rectangle on `node`.
    fn release(&mut self, node: NodeId, pod: PodId) -> Option<Rect>;

    /// Number of GPUs hosting at least one pod.
    fn gpus_in_use(&self) -> usize;

    /// Total bound area across all GPUs.
    fn total_used_area(&self) -> u64;

    /// Mean fragmentation across GPUs with free space.
    fn mean_fragmentation(&self) -> f64;

    /// Counter snapshot.
    fn stats(&self) -> SchedStats;

    /// Encodes the engine's full placement state (per-GPU planes and
    /// counters) into a checkpoint. Policy identity is *not* encoded —
    /// the platform reconstructs the right engine from its config and
    /// then calls [`Scheduler::restore_state`] on it.
    fn snap_state(&self, w: &mut SnapWriter);

    /// Restores state written by [`Scheduler::snap_state`] into a
    /// freshly-constructed engine of the same policy.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Number of log₂ size classes: plane areas run `1..=10_000 < 2¹⁴`, so
/// bit-lengths `0..=14` need 15 classes.
const CLASSES: usize = 15;

/// Feasible candidates probed per class before the fast path commits to
/// the best seen so far (see [`ArenaScheduler::select_fast`]).
const CLASS_SCAN_CAP: usize = 16;

/// Total probes spent per class before the walk moves on: size classes
/// bound piece *area*, not shape, so a class can hold many members whose
/// largest piece is too narrow or too short for the demand. A class that
/// exhausts this budget without a single candidate is abandoned for the
/// next (larger) class rather than scanned to the end.
const CLASS_PROBE_CAP: usize = 32;

/// A policy's selection key, minimized over the probed candidates:
/// (primary pack/spread key, co-resident tiebreak, slack, node id). The
/// trailing node id makes every key unique, so the minimum — and the
/// chosen node — is deterministic.
type PickKey = (u64, Reverse<usize>, u64, NodeId);

/// The log₂ size class (bit length) of an area, clamped to the table.
/// Monotone: `a ≤ b ⇒ class_of(a) ≤ class_of(b)`, which is what makes
/// walking classes `class_of(demand)..` sound.
fn class_of(area: u64) -> usize {
    let bits = u64::BITS - area.leading_zeros();
    (bits as usize).min(CLASSES - 1) // fastg-lint: allow(no-lossy-cast)
}

/// Incremental free-capacity index over the node slab: for each node,
/// which size class its largest single free piece falls in (`piece`,
/// the fast-path filter) and which class its total free area falls in
/// (`area`, the sound filter for the exact fallback — free area ≥ demand
/// is necessary for feasibility). `IdSet` bitmaps iterate in ascending
/// node order, so class walks are deterministic.
#[derive(Debug)]
struct FreeClassIndex {
    piece: [IdSet<NodeId>; CLASSES],
    area: [IdSet<NodeId>; CLASSES],
    cached: IdArena<NodeId, (usize, usize)>,
}

impl FreeClassIndex {
    fn new() -> Self {
        FreeClassIndex {
            piece: std::array::from_fn(|_| IdSet::new()),
            area: std::array::from_fn(|_| IdSet::new()),
            cached: IdArena::new(),
        }
    }

    /// Moves `node` to classes `(piece, area)`, touching only the bitmaps
    /// that actually change — O(1) amortized per placement mutation.
    fn set(&mut self, node: NodeId, classes: (usize, usize)) {
        let old = self.cached.insert(node, classes);
        if let Some((op, oa)) = old {
            if op != classes.0 {
                self.piece[op].remove(node);
            }
            if oa != classes.1 {
                self.area[oa].remove(node);
            }
            if op != classes.0 {
                self.piece[classes.0].insert(node);
            }
            if oa != classes.1 {
                self.area[classes.1].insert(node);
            }
        } else {
            self.piece[classes.0].insert(node);
            self.area[classes.1].insert(node);
        }
    }

    /// Drops `node` from the index entirely (crash).
    fn remove(&mut self, node: NodeId) {
        if let Some((p, a)) = self.cached.remove(node) {
            self.piece[p].remove(node);
            self.area[a].remove(node);
        }
    }
}

/// The guillotine-backed placement engine hosting the non-paper policies.
#[derive(Debug)]
pub struct ArenaScheduler {
    policy: SchedPolicy,
    /// KubeShare-style pinning: pods widen to the full SM axis.
    time_sharing: bool,
    gpus: IdArena<NodeId, GuillotineAlloc>,
    index: FreeClassIndex,
    placements: u64,
    releases: u64,
    probes: Cell<u64>,
    rejects: Cell<u64>,
}

impl ArenaScheduler {
    /// Creates an arena scheduler with no GPUs. `Paper` is served by the
    /// reference [`NodeSelector`], not the arena; if passed anyway it
    /// behaves as [`SchedPolicy::FastPath`].
    pub fn new(policy: SchedPolicy, time_sharing: bool) -> Self {
        debug_assert!(
            policy.uses_arena(),
            "SchedPolicy::Paper runs on the NodeSelector reference"
        );
        ArenaScheduler {
            policy,
            time_sharing,
            gpus: IdArena::new(),
            index: FreeClassIndex::new(),
            placements: 0,
            releases: 0,
            probes: Cell::new(0),
            rejects: Cell::new(0),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Per-GPU state, for reports and tests.
    pub fn gpu(&self, node: NodeId) -> Option<&GuillotineAlloc> {
        self.gpus.get(node)
    }

    /// Re-derives `node`'s index classes after a mutation.
    fn refresh_index(&mut self, node: NodeId) {
        if let Some(g) = self.gpus.get(node) {
            let classes = (class_of(g.largest_free_slot_area()), class_of(g.free_area()));
            self.index.set(node, classes);
        } else {
            self.index.remove(node);
        }
    }

    /// Whether a spec is latency-critical under the co-location policy:
    /// no elastic quota headroom (request == limit) means the pod cannot
    /// absorb interference by borrowing, so it gets isolation; elastic
    /// pods are best-effort and pack densely.
    fn latency_critical(spec: &ResourceSpec) -> bool {
        spec.quota_request >= spec.quota_limit - 1e-9
    }

    /// Fast-path selection: walk piece classes starting at the demand's
    /// class — small-to-large for packing policies, large-to-small when
    /// `descend` is set (LC spreading); the first class yielding a candidate wins,
    /// with `pick` reducing the probed candidates to a unique minimum.
    /// Sound because a fitting piece of area `a' ≥ a` lives in class
    /// `≥ class_of(a)`. Within a class the scan stops after
    /// [`CLASS_SCAN_CAP`] feasible candidates or [`CLASS_PROBE_CAP`]
    /// probes: the class already bounds every member's largest piece
    /// within 2× of the demand, so a bounded prefix (ascending node id —
    /// deterministic) preserves best-fit quality while keeping a
    /// placement O(log nodes + cap) instead of an all-nodes scan. A
    /// class exhausted (or out of budget) without candidates falls
    /// through to the next; the exact-feasibility fallback below stays
    /// uncapped, so a feasible demand is never rejected by the caps.
    fn select_fast(
        &self,
        w: u32,
        h: u32,
        mem_fits: &mut dyn FnMut(NodeId) -> bool,
        pick: &dyn Fn(&GuillotineAlloc, u64, NodeId) -> PickKey,
        descend: bool,
    ) -> Option<NodeId> {
        let demand = u64::from(w) * u64::from(h);
        let base = class_of(demand);
        let span = CLASSES - base;
        // `descend` flips the class walk large-to-small: packing policies
        // want the tightest class first, spreading policies (LC pods
        // under co-location) want the roomiest GPUs first. The walk
        // itself encodes the pack/spread bias; `pick` only breaks ties
        // inside the first class that yields a candidate.
        for step in 0..span {
            let class = if descend {
                CLASSES - 1 - step
            } else {
                base + step
            };
            let mut best: Option<PickKey> = None;
            let mut found = 0usize;
            let mut probed = 0usize;
            for node in self.index.piece[class].iter() {
                if !mem_fits(node) {
                    continue;
                }
                self.probes.set(self.probes.get() + 1);
                probed += 1;
                let Some(g) = self.gpus.get(node) else {
                    debug_assert!(false, "indexed node missing from the arena");
                    continue;
                };
                if let Some((_, slack)) = g.best_fit(w, h) {
                    let cand = pick(g, slack, node);
                    if best.map_or(true, |b| cand < b) {
                        best = Some(cand);
                    }
                    found += 1;
                    if found >= CLASS_SCAN_CAP {
                        break;
                    }
                }
                if probed >= CLASS_PROBE_CAP {
                    break;
                }
            }
            if let Some((_, _, _, n)) = best {
                return Some(n);
            }
        }
        // Exact fallback: no single disjoint piece fits anywhere, but an
        // L-shaped maximal rectangle still might. Total free area ≥ demand
        // is a *necessary* condition, so the area-class walk is the sound
        // pre-filter; within it, feasibility is recomputed exactly. Like
        // the fast path, the first class yielding a candidate wins — but
        // no probe cap applies, so a demand is rejected only after every
        // node with enough free area has been checked exactly.
        for step in 0..span {
            let class = if descend {
                CLASSES - 1 - step
            } else {
                base + step
            };
            let mut best: Option<PickKey> = None;
            for node in self.index.area[class].iter() {
                if !mem_fits(node) {
                    continue;
                }
                self.probes.set(self.probes.get() + 1);
                let Some(g) = self.gpus.get(node) else {
                    debug_assert!(false, "indexed node missing from the arena");
                    continue;
                };
                if let Some((_, slack)) = g.feasible_exact(w, h) {
                    let cand = pick(g, slack, node);
                    if best.map_or(true, |b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            if let Some((_, _, _, n)) = best {
                return Some(n);
            }
        }
        None
    }
}

impl Scheduler for ArenaScheduler {
    fn name(&self) -> &'static str {
        match self.policy {
            SchedPolicy::Paper | SchedPolicy::FastPath => "fast-path",
            SchedPolicy::DemandMatch => "demand-match",
            SchedPolicy::PriorityColocate => "priority-colocate",
        }
    }

    fn add_gpu(&mut self, node: NodeId) {
        self.gpus.insert(node, GuillotineAlloc::standard());
        self.refresh_index(node);
    }

    fn remove_gpu(&mut self, node: NodeId) {
        self.gpus.remove(node);
        self.index.remove(node);
    }

    /// Same quantization as the reference selector; `DemandMatch`
    /// additionally snaps the quota axis up to MPS 5 % segments and the
    /// SM axis up to MIG compute-slice percents, so select and bind agree
    /// on the reserved shape.
    fn demand_of(&self, spec: &ResourceSpec) -> (u32, u32) {
        // f64→u32 `as` saturates, and both axes are clamped to ..=100
        // below, so the casts cannot smuggle in out-of-range demand.
        // fastg-lint: allow(no-lossy-cast)
        let w = (spec.quota_request * 100.0).round().max(1.0) as u32;
        let h = if self.time_sharing {
            100
        } else {
            // fastg-lint: allow(no-lossy-cast)
            spec.sm_partition.round().max(1.0) as u32
        };
        let (w, h) = (w.min(100), h.min(100));
        match self.policy {
            SchedPolicy::DemandMatch => (
                fastg_gpu::mps::quantize_quota_percent(w),
                fastg_gpu::mig::snap_to_slice_percent(h),
            ),
            _ => (w, h),
        }
    }

    fn select_node(
        &self,
        spec: &ResourceSpec,
        mem_fits: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<NodeId> {
        let (w, h) = self.demand_of(spec);
        let chosen = match self.policy {
            // Best-area-fit with consolidation: minimum slack, ties to
            // the busier GPU, then the lower node id (Algorithm 2's
            // ordering, evaluated classwise).
            SchedPolicy::Paper | SchedPolicy::FastPath => self.select_fast(
                w,
                h,
                mem_fits,
                &|g, slack, n| (slack, Reverse(g.pod_count()), 0, n),
                false,
            ),
            // Tightest class first: minimum slack, then the lower node id
            // — quantized shapes make exact-slot reuse the common case.
            SchedPolicy::DemandMatch => self.select_fast(
                w,
                h,
                mem_fits,
                &|_, slack, n| (slack, Reverse(0), 0, n),
                false,
            ),
            // LC spreads: the class walk descends so the roomiest GPUs
            // are probed first, then fewest co-residents wins. BE packs:
            // ascending walk (tightest class first), most co-residents
            // wins; slack breaks ties inside a load level.
            SchedPolicy::PriorityColocate => {
                if Self::latency_critical(spec) {
                    self.select_fast(
                        w,
                        h,
                        mem_fits,
                        &|g, slack, n| (pack_key(g.pod_count()), Reverse(0), slack, n),
                        true,
                    )
                } else {
                    self.select_fast(
                        w,
                        h,
                        mem_fits,
                        &|g, slack, n| (0, Reverse(g.pod_count()), slack, n),
                        false,
                    )
                }
            }
        };
        if chosen.is_none() {
            self.rejects.set(self.rejects.get() + 1);
        }
        chosen
    }

    fn bind(&mut self, node: NodeId, pod: PodId, spec: &ResourceSpec) -> Option<Rect> {
        let (w, h) = self.demand_of(spec);
        let rect = self.gpus.get_mut(node)?.place(pod, w, h);
        if rect.is_some() {
            self.placements += 1;
        }
        self.refresh_index(node);
        rect
    }

    fn release(&mut self, node: NodeId, pod: PodId) -> Option<Rect> {
        let rect = self.gpus.get_mut(node)?.release(pod);
        if rect.is_some() {
            self.releases += 1;
        }
        self.refresh_index(node);
        rect
    }

    fn gpus_in_use(&self) -> usize {
        self.gpus.values().filter(|g| g.pod_count() > 0).count()
    }

    fn total_used_area(&self) -> u64 {
        self.gpus.values().map(GuillotineAlloc::used_area).sum()
    }

    fn mean_fragmentation(&self) -> f64 {
        let frags: Vec<f64> = self
            .gpus
            .values()
            .filter(|g| g.free_area() > 0)
            .map(GuillotineAlloc::fragmentation)
            .collect();
        if frags.is_empty() {
            0.0
        } else {
            frags.iter().sum::<f64>() / frags.len() as f64
        }
    }

    fn stats(&self) -> SchedStats {
        SchedStats {
            placements: self.placements,
            releases: self.releases,
            rejects: self.rejects.get(),
            probes: self.probes.get(),
            exact_fallbacks: self.gpus.values().map(GuillotineAlloc::exact_fallback_count).sum(),
            merges: self.gpus.values().map(GuillotineAlloc::merge_count).sum(),
            restructures: 0,
        }
    }

    /// Captures the per-GPU planes and counters; the [`FreeClassIndex`]
    /// is derived state and is rebuilt on restore.
    fn snap_state(&self, w: &mut SnapWriter) {
        self.gpus.snap(w);
        w.u64(self.placements);
        w.u64(self.releases);
        w.u64(self.probes.get());
        w.u64(self.rejects.get());
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.gpus = IdArena::unsnap(r)?;
        self.placements = r.u64()?;
        self.releases = r.u64()?;
        self.probes = Cell::new(r.u64()?);
        self.rejects = Cell::new(r.u64()?);
        self.index = FreeClassIndex::new();
        let nodes: Vec<NodeId> = self.gpus.keys().collect();
        for node in nodes {
            self.refresh_index(node);
        }
        Ok(())
    }
}

/// LC spreading key: fewest co-residents first. Widened to `u64` so it
/// shares the tuple slot with BE's slack component.
fn pack_key(pod_count: usize) -> u64 {
    pod_count as u64 // fastg-lint: allow(no-lossy-cast)
}

impl Scheduler for NodeSelector {
    fn name(&self) -> &'static str {
        "paper-algo1"
    }

    fn add_gpu(&mut self, node: NodeId) {
        NodeSelector::add_gpu(self, node);
    }

    fn remove_gpu(&mut self, node: NodeId) {
        NodeSelector::remove_gpu(self, node);
    }

    fn demand_of(&self, spec: &ResourceSpec) -> (u32, u32) {
        NodeSelector::demand_of(self, spec)
    }

    fn select_node(
        &self,
        spec: &ResourceSpec,
        mem_fits: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<NodeId> {
        NodeSelector::select_node(self, spec, mem_fits)
    }

    fn bind(&mut self, node: NodeId, pod: PodId, spec: &ResourceSpec) -> Option<Rect> {
        NodeSelector::bind(self, node, pod, spec)
    }

    fn release(&mut self, node: NodeId, pod: PodId) -> Option<Rect> {
        NodeSelector::release(self, node, pod)
    }

    fn gpus_in_use(&self) -> usize {
        NodeSelector::gpus_in_use(self)
    }

    fn total_used_area(&self) -> u64 {
        NodeSelector::total_used_area(self)
    }

    fn mean_fragmentation(&self) -> f64 {
        NodeSelector::mean_fragmentation(self)
    }

    fn stats(&self) -> SchedStats {
        NodeSelector::stats(self)
    }

    fn snap_state(&self, w: &mut SnapWriter) {
        NodeSelector::snap_state(self, w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        NodeSelector::restore_state(self, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(sm: f64, quota: f64) -> ResourceSpec {
        ResourceSpec::new(sm, quota, quota, 0)
    }

    fn elastic(sm: f64, request: f64, limit: f64) -> ResourceSpec {
        ResourceSpec::new(sm, request, limit, 0)
    }

    fn arena(policy: SchedPolicy, gpus: u32) -> ArenaScheduler {
        let mut s = ArenaScheduler::new(policy, false);
        for i in 0..gpus {
            s.add_gpu(NodeId(i));
        }
        s
    }

    fn place(s: &mut ArenaScheduler, pod: PodId, sp: &ResourceSpec) -> Option<NodeId> {
        let node = s.select_node(sp, &mut |_| true)?;
        s.bind(node, pod, sp)?;
        Some(node)
    }

    #[test]
    fn fast_path_consolidates_like_the_paper() {
        // The Figure 11 pod set packs onto one GPU under FastPath too.
        let mut s = arena(SchedPolicy::FastPath, 4);
        let pods = [
            (50.0, 0.6),
            (50.0, 0.6),
            (24.0, 0.4),
            (24.0, 0.4),
            (12.0, 0.4),
            (12.0, 0.4),
            (12.0, 0.4),
            (12.0, 0.4),
        ];
        for (i, &(sm, q)) in pods.iter().enumerate() {
            let pod = PodId(u64::try_from(i).unwrap());
            assert!(place(&mut s, pod, &spec(sm, q)).is_some(), "pod {i}");
        }
        assert_eq!(s.gpus_in_use(), 1, "FastPath should consolidate");
        let stats = s.stats();
        assert_eq!(stats.placements, 8);
        assert!(stats.probes > 0);
    }

    #[test]
    fn index_tracks_churn_and_crash() {
        let mut s = arena(SchedPolicy::FastPath, 3);
        let n = place(&mut s, PodId(0), &spec(100.0, 1.0)).unwrap();
        // The filled node left every fast-path class reachable from a
        // full-plane demand; a second full-GPU pod must go elsewhere.
        let m = place(&mut s, PodId(1), &spec(100.0, 1.0)).unwrap();
        assert_ne!(n, m);
        // Crash the second node: its capacity leaves the index.
        Scheduler::remove_gpu(&mut s, m);
        let o = place(&mut s, PodId(2), &spec(100.0, 1.0)).unwrap();
        assert!(o != n && o != m);
        assert!(place(&mut s, PodId(3), &spec(100.0, 1.0)).is_none());
        assert_eq!(s.stats().rejects, 1);
        // Release frees the first node for reuse.
        Scheduler::release(&mut s, n, PodId(0)).unwrap();
        assert_eq!(place(&mut s, PodId(4), &spec(100.0, 1.0)), Some(n));
    }

    #[test]
    fn demand_match_quantizes_both_axes() {
        let s = arena(SchedPolicy::DemandMatch, 1);
        // 42 % quota → 45 % segment; 12 % SM → 15 % slice.
        assert_eq!(Scheduler::demand_of(&s, &spec(12.0, 0.42)), (45, 15));
        // 30 % SM → 43 % (3g slice); full plane stays full.
        assert_eq!(Scheduler::demand_of(&s, &spec(30.0, 1.0)), (100, 43));
        let plain = arena(SchedPolicy::FastPath, 1);
        assert_eq!(Scheduler::demand_of(&plain, &spec(12.0, 0.42)), (42, 12));
    }

    #[test]
    fn priority_colocate_spreads_lc_and_packs_be() {
        let mut s = arena(SchedPolicy::PriorityColocate, 3);
        // Two LC pods (request == limit) spread across distinct GPUs.
        let a = place(&mut s, PodId(0), &spec(12.0, 0.3)).unwrap();
        let b = place(&mut s, PodId(1), &spec(12.0, 0.3)).unwrap();
        assert_ne!(a, b, "LC pods spread");
        // BE pods (elastic headroom) pack onto the busiest feasible GPU.
        let c = place(&mut s, PodId(2), &elastic(12.0, 0.2, 0.8)).unwrap();
        let d = place(&mut s, PodId(3), &elastic(12.0, 0.2, 0.8)).unwrap();
        assert_eq!(c, d, "BE pods co-locate");
    }

    #[test]
    fn exact_fallback_reaches_l_shaped_nodes() {
        let mut s = arena(SchedPolicy::FastPath, 1);
        // Carve the node's plane into an L whose arms are two disjoint
        // pieces of 2 000 area each.
        let g = s.gpus.get_mut(NodeId(0)).unwrap();
        assert!(g.place_at(PodId(0), Rect::new(20, 20, 80, 80)));
        s.refresh_index(NodeId(0));
        // A (100 % quota, 20 % SM) demand fits no single piece but is
        // geometrically feasible: selection must fall back, not reject.
        let sp = spec(20.0, 1.0);
        let node = s.select_node(&sp, &mut |_| true).unwrap();
        assert_eq!(node, NodeId(0));
        assert!(s.bind(node, PodId(1), &sp).is_some());
        assert_eq!(s.stats().exact_fallbacks, 1);
    }

    #[test]
    fn trait_object_drives_both_engines() {
        let mut engines: Vec<Box<dyn Scheduler>> = vec![
            Box::new(NodeSelector::new(
                crate::scheduler::PlacementPolicy::MaximalRectangles,
            )),
            Box::new(ArenaScheduler::new(SchedPolicy::FastPath, false)),
        ];
        for e in &mut engines {
            e.add_gpu(NodeId(0));
            e.add_gpu(NodeId(1));
            let sp = spec(50.0, 0.5);
            let n = e.select_node(&sp, &mut |_| true).unwrap();
            assert!(e.bind(n, PodId(0), &sp).is_some());
            assert_eq!(e.gpus_in_use(), 1);
            assert_eq!(e.total_used_area(), 2500);
            assert!(e.release(n, PodId(0)).is_some());
            assert_eq!(e.stats().releases, 1);
        }
        assert_eq!(engines[0].name(), "paper-algo1");
        assert_eq!(engines[1].name(), "fast-path");
    }
}
