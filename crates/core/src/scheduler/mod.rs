//! FaST-Scheduler (paper §3.4): profiling-driven auto-scaling and
//! fragmentation-aware GPU packing.
//!
//! Two algorithms:
//!
//! * [`scaling::heuristic_scale`] — **Algorithm 1**, the Heuristic Scaling
//!   Algorithm. Converts a function's RPS processing gap into
//!   scale-up/scale-down decisions using the profiler's
//!   (SM partition, quota) → throughput map, preferring the configuration
//!   with the best *RPR* (RPS per resource, `T / (S × Q)`).
//! * [`rects::GpuRects`] — **Algorithm 2**, the Maximal Rectangles
//!   Algorithm. Treats each GPU as a 100 × 100 rectangle
//!   (quota % × SM %), keeps a maximal-free-rectangle list per GPU, and
//!   binds pods with global best-area-fit ("secondCores" difference),
//!   `PlaceAndNewJointRect` splits, intersection updates with subdivision,
//!   redundant-rectangle pruning, and the keep-restructure reclamation
//!   policy.
//!
//! [`node_select::NodeSelector`] lifts Algorithm 2 across all GPUs of the
//! cluster (plus a memory-capacity filter), and also provides the
//! comparison placers used in the evaluation: the KubeShare-style
//! time-sharing placement (every pod needs 100 % of the SMs, so packing is
//! quota-only) and a first-fit baseline for the fragmentation ablation.
//!
//! The **scheduler arena** generalizes that reference path for fleet
//! scale: [`guillotine::GuillotineAlloc`] is a disjoint free-list
//! allocator with size-bucketed pieces and generation-stamped slab
//! handles (O(log)-ish place/release, exact-feasibility fallback), and
//! [`arena::ArenaScheduler`] drives it behind the pluggable
//! [`arena::Scheduler`] trait with an incremental free-capacity class
//! index over the node slab — plus the ParvaGPU-style demand-matching
//! and Tally-style priority co-location comparison policies.

pub mod arena;
pub mod guillotine;
pub mod node_select;
pub mod rects;
pub mod scaling;

pub use arena::{ArenaScheduler, SchedStats, Scheduler};
pub use guillotine::{AllocId, GuillotineAlloc};
pub use node_select::{NodeSelector, PlacementPolicy};
pub use rects::{FitRule, GpuRects, Rect};
pub use scaling::{heuristic_scale, ConfigPoint, RunningPod, ScaleAction};
