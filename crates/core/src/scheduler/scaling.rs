//! The Heuristic Scaling Algorithm (paper Algorithm 1).

use fastg_cluster::PodId;

/// One profiled configuration point of a function: running one pod with SM
/// partition `sm` (%) and time quota `quota` (fraction) yields `rps`
/// requests/second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigPoint {
    /// SM partition percentage.
    pub sm: f64,
    /// Time quota fraction.
    pub quota: f64,
    /// Measured throughput.
    pub rps: f64,
}

impl ConfigPoint {
    /// RPS per Resource: `T / (S × Q)` — the GPU processing efficiency of
    /// this spatio-temporal resource combination.
    pub fn rpr(&self) -> f64 {
        self.rps / (self.sm / 100.0 * self.quota)
    }
}

/// A currently running pod of the function, with the throughput its
/// configuration was profiled at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningPod {
    /// The pod.
    pub pod: PodId,
    /// Its configuration and profiled throughput.
    pub config: ConfigPoint,
}

/// A scaling decision for one function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleAction {
    /// Create a pod with this configuration (`<F, S, Q, +>` in the paper).
    Up(ConfigPoint),
    /// Drain this pod (`<J, S, Q, −>`).
    Down(PodId),
}

/// Algorithm 1 for a single function.
///
/// `delta_rps` is the processing gap `R_j − Σ T_{j,i}`: positive means the
/// predicted load exceeds provisioned capacity.
///
/// * Scaling **up**: `n = ⌊Δ/T_eff⌋` pods of the most efficient (highest
///   RPR) configuration `p_eff` handle the bulk; the residual `r` gets the
///   *minimum sufficient* configuration `p_ideal = argmin (T − r)`
///   subject to `T > r`.
/// * Scaling **down**: running pods are considered in ascending RPR order
///   (the least efficient first) and removed only while the gap stays
///   non-positive, so capacity never drops below demand.
///
/// Pods with equal RPR are tied deterministically by `PodId`.
///
/// ```
/// use fastgshare::scheduler::{heuristic_scale, ConfigPoint, ScaleAction};
///
/// // One profiled configuration serving 40 req/s per pod.
/// let profile = [ConfigPoint { sm: 12.0, quota: 0.4, rps: 40.0 }];
/// // 100 req/s of unmet demand → two bulk pods + one residual pod.
/// let actions = heuristic_scale(100.0, &profile, &[]);
/// assert_eq!(actions.len(), 3);
/// assert!(actions.iter().all(|a| matches!(a, ScaleAction::Up(_))));
/// ```
pub fn heuristic_scale(
    delta_rps: f64,
    profile: &[ConfigPoint],
    running: &[RunningPod],
) -> Vec<ScaleAction> {
    const EPS: f64 = 1e-9;
    let mut actions = Vec::new();
    if delta_rps >= 0.0 {
        if delta_rps < EPS || profile.is_empty() {
            return actions;
        }
        // p_eff: highest RPR (ties: higher rps, then smaller area, for
        // determinism).
        use std::cmp::Ordering;
        let Some(&p_eff) = profile.iter().max_by(|a, b| {
            a.rpr()
                .partial_cmp(&b.rpr())
                .unwrap_or(Ordering::Equal)
                .then(a.rps.partial_cmp(&b.rps).unwrap_or(Ordering::Equal))
                .then(b.quota.partial_cmp(&a.quota).unwrap_or(Ordering::Equal))
        }) else {
            return actions; // unreachable: emptiness checked above
        };
        debug_assert!(p_eff.rps > 0.0, "profiled zero throughput for p_eff");
        if p_eff.rps <= 0.0 {
            return actions;
        }
        // f64→usize `as` saturates, and the ratio is non-negative (both
        // operands are positive by the guard above).
        // fastg-lint: allow(no-lossy-cast)
        let n = (delta_rps / p_eff.rps).floor() as usize;
        let r = delta_rps - n as f64 * p_eff.rps;
        for _ in 0..n {
            actions.push(ScaleAction::Up(p_eff));
        }
        if r > EPS {
            // p_ideal: the tightest configuration that still covers r.
            let p_ideal = profile
                .iter()
                .filter(|p| p.rps > r)
                .min_by(|a, b| {
                    (a.rps - r)
                        .partial_cmp(&(b.rps - r))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .copied()
                // If even the largest configuration cannot cover the
                // residual alone (can only happen when r approaches
                // T_eff), fall back to one more p_eff pod.
                .unwrap_or(p_eff);
            actions.push(ScaleAction::Up(p_ideal));
        }
    } else {
        // Scale down: ascending RPR (priority queue L_j), remove while the
        // gap stays covered.
        let mut order: Vec<&RunningPod> = running.iter().collect();
        order.sort_by(|a, b| {
            a.config
                .rpr()
                .partial_cmp(&b.config.rpr())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.pod.cmp(&b.pod))
        });
        let mut delta = delta_rps;
        for rp in order {
            if delta >= 0.0 {
                break;
            }
            if delta + rp.config.rps <= 0.0 {
                actions.push(ScaleAction::Down(rp.pod));
                delta += rp.config.rps;
            }
            // Algorithm 1 pops only the front; a front pod too large to
            // remove ends the loop.
            else {
                break;
            }
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Vec<ConfigPoint> {
        vec![
            // RPR: 40/(0.12×0.4) = 833 (the efficient point)
            ConfigPoint {
                sm: 12.0,
                quota: 0.4,
                rps: 40.0,
            },
            // RPR: 55/(0.24×0.4) = 573
            ConfigPoint {
                sm: 24.0,
                quota: 0.4,
                rps: 55.0,
            },
            // RPR: 12/(0.06×0.4) = 500
            ConfigPoint {
                sm: 6.0,
                quota: 0.4,
                rps: 12.0,
            },
            // RPR: 70/(0.5×0.6) = 233
            ConfigPoint {
                sm: 50.0,
                quota: 0.6,
                rps: 70.0,
            },
        ]
    }

    #[test]
    fn rpr_definition() {
        let p = ConfigPoint {
            sm: 12.0,
            quota: 0.4,
            rps: 40.0,
        };
        assert!((p.rpr() - 40.0 / 0.048).abs() < 1e-9);
    }

    #[test]
    fn scale_up_bulk_plus_ideal_residual() {
        // Δ = 100: n = ⌊100/40⌋ = 2 pods of p_eff, residual r = 20 → the
        // tightest config with T > 20 is (12 %, 0.4, 40).
        let actions = heuristic_scale(100.0, &profile(), &[]);
        assert_eq!(actions.len(), 3);
        for a in &actions[..2] {
            match a {
                ScaleAction::Up(p) => {
                    assert_eq!(p.sm, 12.0);
                    assert_eq!(p.rps, 40.0);
                }
                _ => panic!("expected Up"),
            }
        }
        match actions[2] {
            ScaleAction::Up(p) => assert_eq!(p.rps, 40.0),
            _ => panic!("expected Up"),
        }
    }

    #[test]
    fn scale_up_small_residual_picks_small_config() {
        // Δ = 10: n = 0, residual 10 → minimum sufficient is (6 %, 12 rps).
        let actions = heuristic_scale(10.0, &profile(), &[]);
        assert_eq!(actions.len(), 1);
        match actions[0] {
            ScaleAction::Up(p) => {
                assert_eq!(p.sm, 6.0);
                assert_eq!(p.rps, 12.0);
            }
            _ => panic!("expected Up"),
        }
    }

    #[test]
    fn exact_multiple_has_no_residual_pod() {
        let actions = heuristic_scale(80.0, &profile(), &[]);
        assert_eq!(actions.len(), 2);
        assert!(actions
            .iter()
            .all(|a| matches!(a, ScaleAction::Up(p) if p.rps == 40.0)));
    }

    #[test]
    fn capacity_always_covers_demand_on_scale_up() {
        for delta in [1.0, 7.5, 39.9, 40.0, 41.0, 123.4, 500.0] {
            let actions = heuristic_scale(delta, &profile(), &[]);
            let capacity: f64 = actions
                .iter()
                .map(|a| match a {
                    ScaleAction::Up(p) => p.rps,
                    _ => 0.0,
                })
                .sum();
            assert!(
                capacity >= delta - 1e-9,
                "Δ={delta}: capacity {capacity} insufficient"
            );
        }
    }

    #[test]
    fn zero_gap_is_steady() {
        assert!(heuristic_scale(0.0, &profile(), &[]).is_empty());
        assert!(heuristic_scale(1e-12, &profile(), &[]).is_empty());
    }

    #[test]
    fn scale_down_removes_least_efficient_first() {
        let eff = ConfigPoint {
            sm: 12.0,
            quota: 0.4,
            rps: 40.0,
        };
        let ineff = ConfigPoint {
            sm: 50.0,
            quota: 0.6,
            rps: 70.0,
        };
        let running = vec![
            RunningPod {
                pod: PodId(1),
                config: eff,
            },
            RunningPod {
                pod: PodId(2),
                config: ineff,
            },
        ];
        // Over-provisioned by 75 rps: the inefficient 70-rps pod goes; the
        // efficient one survives (removing it too would under-provision).
        let actions = heuristic_scale(-75.0, &profile(), &running);
        assert_eq!(actions, vec![ScaleAction::Down(PodId(2))]);
    }

    #[test]
    fn scale_down_never_under_provisions() {
        let cfg = ConfigPoint {
            sm: 12.0,
            quota: 0.4,
            rps: 40.0,
        };
        let running: Vec<RunningPod> = (0..3)
            .map(|i| RunningPod {
                pod: PodId(i),
                config: cfg,
            })
            .collect();
        // Gap −50: only one 40-rps pod may go (removing two → −50+80 > 0).
        let actions = heuristic_scale(-50.0, &profile(), &running);
        assert_eq!(actions.len(), 1);
        // Gap −120: all three may go.
        let actions = heuristic_scale(-120.0, &profile(), &running);
        assert_eq!(actions.len(), 3);
        // Gap −30: nothing can be removed.
        let actions = heuristic_scale(-30.0, &profile(), &running);
        assert!(actions.is_empty());
    }

    #[test]
    fn empty_profile_scales_nothing() {
        assert!(heuristic_scale(100.0, &[], &[]).is_empty());
    }
}
