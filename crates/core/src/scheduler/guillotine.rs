//! # Guillotine free-list allocator over the (quota × SM) plane
//!
//! The fleet-scale replacement for [`GpuRects`](super::GpuRects) on the
//! placement hot path. Where the maximal-rects reference implementation
//! keeps an *overlapping* free list (O(free²) prune after every split and
//! a full `restructure()` rebuild on release), this allocator keeps the
//! classic guillotine representation:
//!
//! * the free set is **disjoint** and tiles exactly the complement of the
//!   placements, so `sum(free) + used == capacity` holds as an identity;
//! * free pieces live in a dense slab of generation-stamped slots
//!   (the guillotiere `AllocIndex` idiom — no `BTreeMap`, per the
//!   `no-btreemap-hot-path` lint), indexed by **size-bucketed free
//!   lists** so a fit query scans only pieces large enough to matter;
//! * `release` performs **neighbor merges** along full shared edges
//!   instead of rebuilding the free list.
//!
//! Guillotine splits under-approximate feasibility (a demand can fit a
//! maximal free rectangle yet no single disjoint piece: the classic
//! L-shape). The allocator therefore backs the fast path with an **exact
//! fallback**: when no piece fits, it recomputes the ground-truth maximal
//! free rectangles from the placement set and carves the demand out of
//! the disjoint free set at the exact position. Accepts are thus
//! *equivalent to geometric feasibility* — the same accept/reject
//! boundary as an ideal allocator — while the common case stays a
//! bucketed slot scan. Fallback counts are exported so benches can verify
//! the fast path actually absorbs the churn.

use fastg_cluster::PodId;
use fastg_des::sanitizer;
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};

use super::rects::{at_least_one, maximal_free_rects, FitRule, Rect};

/// Number of size-class buckets for free pieces.
const BUCKET_COUNT: usize = 4;

/// Size class of a free piece by area: `<128`, `<1024`, `<4096`, `≥4096`.
/// Monotone in area, so a demand of area `a` can only be satisfied by a
/// single piece in buckets `bucket_of(a)..`.
#[inline]
fn bucket_of(area: u64) -> usize {
    if area < 128 {
        0
    } else if area < 1024 {
        1
    } else if area < 4096 {
        2
    } else {
        3
    }
}

#[inline]
fn ix(index: u32) -> usize {
    index as usize // fastg-lint: allow(no-lossy-cast)
}

/// Generation-stamped handle to a live placement. Stale handles (the slot
/// was freed, merged or reused since) are detected and rejected — the
/// double-free guard the `alloc-handle-generation` sanitizer rule checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocId {
    index: u32,
    generation: u32,
}

impl AllocId {
    /// Dense slab index of the slot behind this handle.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Generation the slot carried when the handle was issued.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

/// What a slab slot currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Unused slot awaiting reuse via the vacant list.
    Vacant,
    /// A free piece; `bucket_pos` is its position inside
    /// `buckets[bucket_of(rect.area())]` for O(1) removal.
    Free { bucket_pos: usize },
    /// A placement bound to a pod.
    Used { pod: PodId },
}

#[derive(Debug, Clone)]
struct Slot {
    rect: Rect,
    generation: u32,
    state: SlotState,
}

/// Guillotine allocator over one GPU's (quota × SM) plane.
///
/// ```
/// use fastgshare::scheduler::GuillotineAlloc;
/// use fastg_cluster::PodId;
///
/// let mut gpu = GuillotineAlloc::standard(); // 100 % quota × 100 % SMs
/// let rect = gpu.place(PodId(0), 40, 12).unwrap();
/// assert_eq!((rect.x, rect.y), (0, 0)); // bottom-left placement
/// assert_eq!(gpu.free_area(), 10_000 - 480);
/// assert_eq!(gpu.release(PodId(0)), Some(rect));
/// assert_eq!(gpu.free_area(), 10_000);
/// assert_eq!(gpu.largest_free_slot_area(), 10_000); // merged back whole
/// ```
#[derive(Debug, Clone)]
pub struct GuillotineAlloc {
    width: u32,
    height: u32,
    /// Dense slab: free pieces and placements share one index space.
    slots: Vec<Slot>,
    /// Indices of `Vacant` slots, reused LIFO.
    vacant: Vec<u32>,
    /// Free-piece indices by size class (`bucket_of`).
    buckets: [Vec<u32>; BUCKET_COUNT],
    /// `(pod, slot)` bindings, sorted by pod id.
    pods: Vec<(PodId, u32)>,
    used_area: u64,
    fit_rule: FitRule,
    merges: u64,
    exact_fallbacks: u64,
    /// Reused scan buffer for the release-time merge fixpoint, so
    /// steady-state churn never allocates.
    merge_scratch: Vec<u32>,
}

impl GuillotineAlloc {
    /// A fresh GPU plane using the paper's best-area-fit rule.
    pub fn new(width: u32, height: u32) -> Self {
        Self::with_rule(width, height, FitRule::BestAreaFit)
    }

    /// A fresh GPU plane with an explicit fit rule.
    pub fn with_rule(width: u32, height: u32, fit_rule: FitRule) -> Self {
        let width = at_least_one(width, "GPU plane width");
        let height = at_least_one(height, "GPU plane height");
        let mut alloc = GuillotineAlloc {
            width,
            height,
            slots: Vec::new(),
            vacant: Vec::new(),
            buckets: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            pods: Vec::new(),
            used_area: 0,
            fit_rule,
            merges: 0,
            exact_fallbacks: 0,
            merge_scratch: Vec::new(),
        };
        alloc.insert_free(Rect::new(0, 0, width, height));
        alloc
    }

    /// The standard paper-sized 100 × 100 percent plane.
    pub fn standard() -> Self {
        Self::new(100, 100)
    }

    /// The configured fit rule.
    pub fn fit_rule(&self) -> FitRule {
        self.fit_rule
    }

    /// Total capacity ("secondCores").
    pub fn capacity(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Area currently bound to pods (O(1): a running counter).
    pub fn used_area(&self) -> u64 {
        self.used_area
    }

    /// Unbound area (O(1): the free set is disjoint by construction).
    pub fn free_area(&self) -> u64 {
        self.capacity() - self.used_area
    }

    /// The largest single *disjoint* free piece. A demand of at most this
    /// area may be placeable on the fast path; larger demands need the
    /// exact fallback. (Contrast [`GpuRects::largest_free_area`]
    /// (super::GpuRects::largest_free_area), which reports the largest
    /// *maximal* rectangle.)
    pub fn largest_free_slot_area(&self) -> u64 {
        // Bucket classes are ordered by area range, so the top non-empty
        // bucket holds the global maximum.
        for bucket in self.buckets.iter().rev() {
            if let Some(max) = bucket
                .iter()
                .map(|&i| self.slots[ix(i)].rect.area())
                .max()
            {
                return max;
            }
        }
        0
    }

    /// Fragmentation in `[0, 1]` against the *exact* maximal-rectangle
    /// geometry (report-time metric; recomputes ground truth, not the
    /// disjoint approximation). Zero when empty or perfectly consolidated.
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_area();
        if self.capacity() == 0 || free == 0 {
            return 0.0;
        }
        let placements: Vec<Rect> = self.pods.iter().map(|&(_, i)| self.slots[ix(i)].rect).collect();
        let largest = maximal_free_rects(self.width, self.height, &placements)
            .iter()
            .map(Rect::area)
            .max()
            .unwrap_or(0);
        1.0 - largest as f64 / free as f64
    }

    /// The current disjoint free pieces (unordered diagnostic snapshot).
    pub fn free_rects(&self) -> Vec<Rect> {
        let mut rects: Vec<Rect> = self
            .buckets
            .iter()
            .flatten()
            .map(|&i| self.slots[ix(i)].rect)
            .collect();
        rects.sort_by_key(|r| (r.y, r.x, r.w, r.h));
        rects
    }

    /// Number of disjoint free pieces currently tracked.
    pub fn free_piece_count(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// The rectangle bound to `pod`, if any.
    pub fn placement_of(&self, pod: PodId) -> Option<Rect> {
        self.pods
            .binary_search_by_key(&pod, |&(p, _)| p)
            .ok()
            .map(|at| self.slots[ix(self.pods[at].1)].rect)
    }

    /// Every `(pod, rectangle)` binding, in ascending pod order.
    pub fn placements(&self) -> impl Iterator<Item = (PodId, Rect)> + '_ {
        self.pods
            .iter()
            .map(|&(p, i)| (p, self.slots[ix(i)].rect))
    }

    /// Pods currently bound.
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    /// Generation-stamped handle to `pod`'s live placement.
    pub fn handle_of(&self, pod: PodId) -> Option<AllocId> {
        self.pods
            .binary_search_by_key(&pod, |&(p, _)| p)
            .ok()
            .map(|at| {
                let index = self.pods[at].1;
                AllocId {
                    index,
                    generation: self.slots[ix(index)].generation,
                }
            })
    }

    /// Neighbor merges performed by [`Self::release`].
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Placements that needed the exact maximal-rects fallback because no
    /// single disjoint piece fit. Benches assert this stays a small
    /// fraction of placements — the fast path must absorb the churn.
    pub fn exact_fallback_count(&self) -> u64 {
        self.exact_fallbacks
    }

    // -- slab plumbing ----------------------------------------------------

    /// Claims a slot (reusing a vacant one if available) and bumps its
    /// generation so stale handles cannot alias the new occupant.
    fn claim_slot(&mut self, rect: Rect, state: SlotState) -> u32 {
        if let Some(index) = self.vacant.pop() {
            let slot = &mut self.slots[ix(index)];
            slot.rect = rect;
            slot.generation = slot.generation.wrapping_add(1);
            slot.state = state;
            return index;
        }
        debug_assert!(self.slots.len() < u32::MAX as usize); // fastg-lint: allow(no-lossy-cast)
        let index = self.slots.len() as u32; // fastg-lint: allow(no-lossy-cast)
        self.slots.push(Slot {
            rect,
            generation: 0,
            state,
        });
        index
    }

    /// Registers `rect` as a free piece in its size bucket. Zero-area
    /// rectangles are dropped.
    fn insert_free(&mut self, rect: Rect) {
        if rect.area() == 0 {
            return;
        }
        let bucket = bucket_of(rect.area());
        let bucket_pos = self.buckets[bucket].len();
        let index = self.claim_slot(rect, SlotState::Free { bucket_pos });
        self.buckets[bucket].push(index);
    }

    /// Unlinks free slot `index` from its bucket (O(1) swap-remove with
    /// `bucket_pos` fixup) and marks it vacant for reuse.
    fn remove_free(&mut self, index: u32) -> Rect {
        let (rect, bucket_pos) = {
            let slot = &self.slots[ix(index)];
            let SlotState::Free { bucket_pos } = slot.state else {
                debug_assert!(false, "remove_free on a non-free slot");
                return Rect::new(0, 0, 0, 0);
            };
            (slot.rect, bucket_pos)
        };
        let bucket = bucket_of(rect.area());
        self.buckets[bucket].swap_remove(bucket_pos);
        if let Some(&moved) = self.buckets[bucket].get(bucket_pos) {
            self.slots[ix(moved)].state = SlotState::Free { bucket_pos };
        }
        let slot = &mut self.slots[ix(index)];
        slot.state = SlotState::Vacant;
        slot.generation = slot.generation.wrapping_add(1);
        self.vacant.push(index);
        rect
    }

    // -- fit queries ------------------------------------------------------

    /// Fast-path fit: the best *single disjoint piece* for a `w × h`
    /// demand under the configured rule, ties broken bottom-left-most.
    /// Returns the piece's slot index, rectangle and area slack.
    fn best_fit_slot(&self, w: u32, h: u32) -> Option<(u32, Rect, u64)> {
        let demand = u64::from(w) * u64::from(h);
        let key = |r: &Rect| -> (u64, u32, u32) {
            match self.fit_rule {
                FitRule::BestAreaFit => (r.area() - demand, r.y, r.x),
                FitRule::BestShortSideFit => {
                    let short = u64::from((r.w - w).min(r.h - h));
                    (short, r.y, r.x)
                }
                FitRule::BottomLeft => (0, r.y, r.x),
            }
        };
        // Distinct disjoint rectangles cannot share a bottom-left corner,
        // so `(rule key, y, x)` is a total order: the minimum is unique
        // and scan order cannot leak into the result.
        self.buckets[bucket_of(demand)..]
            .iter()
            .flatten()
            .map(|&i| (i, self.slots[ix(i)].rect))
            .filter(|(_, r)| r.fits(w, h))
            .min_by_key(|(_, r)| key(r))
            .map(|(i, r)| (i, r, r.area() - demand))
    }

    /// Fast-path fit query (public, mirrors [`GpuRects::best_fit`]
    /// (super::GpuRects::best_fit) but over disjoint pieces only).
    pub fn best_fit(&self, w: u32, h: u32) -> Option<(Rect, u64)> {
        self.best_fit_slot(w, h).map(|(_, r, slack)| (r, slack))
    }

    /// Exact feasibility: the best *maximal* free rectangle for a `w × h`
    /// demand, recomputed from the placement set. This is the ground
    /// truth the fast path under-approximates; `place` falls back to it
    /// so accept ⟺ geometrically feasible.
    pub fn feasible_exact(&self, w: u32, h: u32) -> Option<(Rect, u64)> {
        let demand = u64::from(w) * u64::from(h);
        if self.free_area() < demand {
            return None;
        }
        let placements: Vec<Rect> = self.pods.iter().map(|&(_, i)| self.slots[ix(i)].rect).collect();
        let maximal = maximal_free_rects(self.width, self.height, &placements);
        // Distinct maximal rectangles CAN share an origin and an area
        // (an L-shape's 20×100 and 100×20 arms both sit at (0,0)), so the
        // tie-break key carries the width to stay a total order.
        let key = |r: &Rect| -> (u64, u32, u32, u32) {
            match self.fit_rule {
                FitRule::BestAreaFit => (r.area() - demand, r.y, r.x, r.w),
                FitRule::BestShortSideFit => {
                    let short = u64::from((r.w - w).min(r.h - h));
                    (short, r.y, r.x, r.w)
                }
                FitRule::BottomLeft => (0, r.y, r.x, r.w),
            }
        };
        maximal
            .iter()
            .filter(|r| r.fits(w, h))
            .min_by_key(|r| key(r))
            .map(|r| (*r, r.area() - demand))
    }

    // -- mutation ---------------------------------------------------------

    /// Subtracts `f` from the disjoint free set: every overlapping piece
    /// is replaced by its (up to four) disjoint remainders. Total removed
    /// overlap must equal `f.area()` — i.e. `f` lies entirely in free
    /// space; callers guarantee this.
    fn carve(&mut self, f: &Rect) {
        let mut touching: Vec<u32> = self
            .buckets
            .iter()
            .flatten()
            .copied()
            .filter(|&i| self.slots[ix(i)].rect.intersects(f))
            .collect();
        // Pieces are disjoint so the remainders are independent of visit
        // order; sort anyway so the slab/vacant history — and therefore
        // `Clone`-then-replay comparisons — are reproducible.
        touching.sort_unstable();
        let mut covered = 0u64;
        for index in touching {
            let r = self.remove_free(index);
            let ox1 = r.x.max(f.x);
            let ox2 = r.right().min(f.right());
            let oy1 = r.y.max(f.y);
            let oy2 = r.top().min(f.top());
            covered += u64::from(ox2 - ox1) * u64::from(oy2 - oy1);
            // Disjoint subtraction: full-height side strips, then the
            // middle column's below/above strips. Unlike the maximal-rects
            // subdivision these four pieces never overlap.
            if ox1 > r.x {
                self.insert_free(Rect::new(r.x, r.y, ox1 - r.x, r.h));
            }
            if r.right() > ox2 {
                self.insert_free(Rect::new(ox2, r.y, r.right() - ox2, r.h));
            }
            if oy1 > r.y {
                self.insert_free(Rect::new(ox1, r.y, ox2 - ox1, oy1 - r.y));
            }
            if r.top() > oy2 {
                self.insert_free(Rect::new(ox1, oy2, ox2 - ox1, r.top() - oy2));
            }
        }
        debug_assert_eq!(covered, f.area(), "carve target not fully free");
    }

    /// Records `pod` at `rect` in the pod table and the slab.
    fn bind(&mut self, pod: PodId, rect: Rect) -> u32 {
        let index = self.claim_slot(rect, SlotState::Used { pod });
        match self.pods.binary_search_by_key(&pod, |&(p, _)| p) {
            Ok(_) => debug_assert!(false, "pod {pod:?} already placed on this GPU"),
            Err(at) => self.pods.insert(at, (pod, index)),
        }
        self.used_area += rect.area();
        index
    }

    /// Places `pod` (size `w × h`). Fast path: best fitting disjoint
    /// piece, guillotine split (the narrower leftover axis keeps the
    /// full-length strip). Fallback: exact maximal-rects carve. Returns
    /// the bound rectangle, or `None` when geometrically infeasible.
    pub fn place(&mut self, pod: PodId, w: u32, h: u32) -> Option<Rect> {
        debug_assert!(w > 0 && h > 0, "degenerate pod rectangle");
        let w = w.max(1);
        let h = h.max(1);
        if self.pods.binary_search_by_key(&pod, |&(p, _)| p).is_ok() {
            debug_assert!(false, "pod {pod:?} already placed on this GPU");
            return None;
        }
        let placed = if let Some((target, rect, _slack)) = self.best_fit_slot(w, h) {
            self.remove_free(target);
            let f = Rect::new(rect.x, rect.y, w, h);
            // Guillotine split, deterministic axis rule: give the
            // narrower leftover dimension the full-length strip so the
            // larger remainder stays as square as possible.
            if rect.w - w <= rect.h - h {
                // Full-width top strip, short right strip beside the pod.
                self.insert_free(Rect::new(rect.x, f.top(), rect.w, rect.top() - f.top()));
                self.insert_free(Rect::new(f.right(), rect.y, rect.right() - f.right(), h));
            } else {
                // Full-height right strip, short top strip above the pod.
                self.insert_free(Rect::new(f.right(), rect.y, rect.right() - f.right(), rect.h));
                self.insert_free(Rect::new(rect.x, f.top(), w, rect.top() - f.top()));
            }
            self.bind(pod, f);
            f
        } else {
            let (target, _slack) = self.feasible_exact(w, h)?;
            self.exact_fallbacks += 1;
            let f = Rect::new(target.x, target.y, w, h);
            self.carve(&f);
            self.bind(pod, f);
            f
        };
        self.shadow_check();
        Some(placed)
    }

    /// Binds `pod` at an exact, caller-chosen position. Accepts iff the
    /// rectangle lies in bounds and overlaps no current placement — the
    /// same contract as [`GpuRects::place_at`](super::GpuRects::place_at),
    /// the differential-testing hook that keeps both allocators' placement
    /// sets identical under a shared position stream.
    pub fn place_at(&mut self, pod: PodId, rect: Rect) -> bool {
        if rect.w == 0 || rect.h == 0 || self.pods.binary_search_by_key(&pod, |&(p, _)| p).is_ok() {
            return false;
        }
        let bounds = Rect::new(0, 0, self.width, self.height);
        if !bounds.contains(&rect)
            || self
                .pods
                .iter()
                .any(|&(_, i)| self.slots[ix(i)].rect.intersects(&rect))
        {
            return false;
        }
        self.carve(&rect);
        self.bind(pod, rect);
        self.shadow_check();
        true
    }

    /// Releases `pod`, returning its rectangle to the free set and
    /// merging it with edge-aligned free neighbors until no full shared
    /// edge remains — the keep-restructure policy's cheap cousin.
    pub fn release(&mut self, pod: PodId) -> Option<Rect> {
        let at = self.pods.binary_search_by_key(&pod, |&(p, _)| p).ok()?;
        let (_, index) = self.pods.remove(at);
        let rect = self.slots[ix(index)].rect;
        debug_assert!(matches!(self.slots[ix(index)].state, SlotState::Used { .. }));
        self.used_area -= rect.area();
        // Vacate the used slot (generation bump invalidates handles),
        // then grow the freed rectangle by neighbor merges.
        let slot = &mut self.slots[ix(index)];
        slot.state = SlotState::Vacant;
        slot.generation = slot.generation.wrapping_add(1);
        self.vacant.push(index);
        self.insert_free(rect);
        self.merge_fixpoint();
        // Pairwise merging can stall on pinwheel-like tilings (no two
        // pieces share a full edge), so an emptied plane is reset to the
        // single full piece outright — the trivial restructure.
        if self.used_area == 0 && self.free_piece_count() > 1 {
            let stuck: Vec<u32> = self.buckets.iter().flatten().copied().collect();
            for i in stuck {
                self.remove_free(i);
            }
            self.merges += 1;
            self.insert_free(Rect::new(0, 0, self.width, self.height));
        }
        self.shadow_check();
        Some(rect)
    }

    /// Merges full-edge-aligned free pieces until none remain — the
    /// keep-restructure policy's cheap cousin. Partner choice is
    /// deterministic (bottom-left-most merged rectangle first), so the
    /// resulting free set is a pure function of the placement history:
    /// bucket scan order cannot leak into it.
    fn merge_fixpoint(&mut self) {
        let mut indices = std::mem::take(&mut self.merge_scratch);
        loop {
            indices.clear();
            indices.extend(self.buckets.iter().flatten().copied());
            let mut best: Option<(u32, u32, Rect)> = None;
            for (pos, &i) in indices.iter().enumerate() {
                let ri = self.slots[ix(i)].rect;
                for &j in &indices[pos + 1..] {
                    if let Some(m) = merged_rect(&ri, &self.slots[ix(j)].rect) {
                        // Free pieces are disjoint, so a merged union
                        // identifies its pair: (y, x, w, h) is total.
                        let better = best
                            .as_ref()
                            .map_or(true, |&(_, _, b)| (m.y, m.x, m.w, m.h) < (b.y, b.x, b.w, b.h));
                        if better {
                            best = Some((i, j, m));
                        }
                    }
                }
            }
            let Some((i, j, merged)) = best else {
                break;
            };
            self.remove_free(i);
            self.remove_free(j);
            self.merges += 1;
            self.insert_free(merged);
        }
        self.merge_scratch = indices;
    }

    /// Releases the placement behind a generation-stamped handle. Stale
    /// handles (already released, slot since reused) are rejected — and
    /// flagged by the sanitizer's `alloc-handle-generation` rule when
    /// armed — rather than freeing an innocent occupant.
    pub fn release_by_handle(&mut self, id: AllocId) -> Option<Rect> {
        let live = self
            .slots
            .get(ix(id.index))
            .filter(|slot| slot.generation == id.generation);
        let Some(slot) = live else {
            sanitizer::check(false, "alloc-handle-generation", || {
                format!(
                    "stale allocation handle {{index: {}, generation: {}}}: double free \
                     or use-after-release",
                    id.index, id.generation
                )
            });
            return None;
        };
        let SlotState::Used { pod } = slot.state else {
            sanitizer::check(false, "alloc-handle-generation", || {
                format!(
                    "allocation handle {{index: {}, generation: {}}} does not name a \
                     live placement",
                    id.index, id.generation
                )
            });
            return None;
        };
        self.release(pod)
    }

    // -- invariants -------------------------------------------------------

    /// O(n²) structural shadow-check, armed only under `FASTG_SANITIZE=1`
    /// in debug builds (the `fastg_des::sanitizer` contract): free pieces
    /// disjoint from each other and from every placement, and the
    /// disjoint free set plus placements covering the capacity exactly.
    fn shadow_check(&self) {
        if !sanitizer::active() {
            return;
        }
        let free: Vec<Rect> = self.free_rects();
        let used: Vec<Rect> = self.pods.iter().map(|&(_, i)| self.slots[ix(i)].rect).collect();
        let bounds = Rect::new(0, 0, self.width, self.height);
        for (i, a) in free.iter().enumerate() {
            sanitizer::check(bounds.contains(a), "alloc-disjoint", || {
                format!("free piece {a:?} escapes the {bounds:?} plane")
            });
            for b in free.iter().skip(i + 1) {
                sanitizer::check(!a.intersects(b), "alloc-disjoint", || {
                    format!("free pieces overlap: {a:?} vs {b:?}")
                });
            }
            for u in &used {
                sanitizer::check(!a.intersects(u), "alloc-disjoint", || {
                    format!("free piece {a:?} overlaps placement {u:?}")
                });
            }
        }
        let free_sum: u64 = free.iter().map(Rect::area).sum();
        let used_sum: u64 = used.iter().map(Rect::area).sum();
        sanitizer::check(
            free_sum + used_sum == self.capacity() && used_sum == self.used_area,
            "alloc-conservation",
            || {
                format!(
                    "area conservation violated: free {} + used {} != capacity {} \
                     (used counter {})",
                    free_sum,
                    used_sum,
                    self.capacity(),
                    self.used_area
                )
            },
        );
    }
}

impl Snap for SlotState {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            SlotState::Vacant => w.u8(0),
            SlotState::Free { bucket_pos } => {
                w.u8(1);
                w.len_prefix(*bucket_pos);
            }
            SlotState::Used { pod } => {
                w.u8(2);
                pod.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => SlotState::Vacant,
            1 => SlotState::Free {
                bucket_pos: r.len_prefix()?,
            },
            2 => SlotState::Used {
                pod: PodId::unsnap(r)?,
            },
            _ => return Err(SnapError::new("slot state tag")),
        })
    }
}

impl Snap for Slot {
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            rect,
            generation,
            state,
        } = self;
        rect.snap(w);
        w.u32(*generation);
        state.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Slot {
            rect: Rect::unsnap(r)?,
            generation: r.u32()?,
            state: SlotState::unsnap(r)?,
        })
    }
}

impl Snap for GuillotineAlloc {
    /// Every index structure is captured in its exact in-memory order —
    /// the vacant LIFO, the bucket lists and the slab itself — because
    /// slot-reuse order feeds generation stamps and therefore handle
    /// validity. Only `merge_scratch` (a pure allocation cache) restores
    /// empty.
    fn snap(&self, w: &mut SnapWriter) {
        let Self {
            width,
            height,
            slots,
            vacant,
            buckets,
            pods,
            used_area,
            fit_rule,
            merges,
            exact_fallbacks,
            merge_scratch: _,
        } = self;
        w.u32(*width);
        w.u32(*height);
        slots.snap(w);
        vacant.snap(w);
        for bucket in buckets {
            bucket.snap(w);
        }
        pods.snap(w);
        w.u64(*used_area);
        fit_rule.snap(w);
        w.u64(*merges);
        w.u64(*exact_fallbacks);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let width = r.u32()?;
        let height = r.u32()?;
        if width == 0 || height == 0 {
            return Err(SnapError::new("guillotine geometry"));
        }
        let slots: Vec<Slot> = Vec::unsnap(r)?;
        let vacant: Vec<u32> = Vec::unsnap(r)?;
        let buckets = [
            Vec::<u32>::unsnap(r)?,
            Vec::<u32>::unsnap(r)?,
            Vec::<u32>::unsnap(r)?,
            Vec::<u32>::unsnap(r)?,
        ];
        let pods: Vec<(PodId, u32)> = Vec::unsnap(r)?;
        let used_area = r.u64()?;
        let fit_rule = FitRule::unsnap(r)?;
        let merges = r.u64()?;
        let exact_fallbacks = r.u64()?;
        let n = slots.len();
        let in_range = |i: &u32| ix(*i) < n;
        if !vacant.iter().all(in_range)
            || !buckets.iter().flatten().all(in_range)
            || !pods.iter().all(|(_, i)| in_range(i))
        {
            return Err(SnapError::new("guillotine slot index"));
        }
        // Cross-check the redundant index structures against the slab:
        // vacant entries name Vacant slots, bucket back-pointers are
        // exact, pod bindings are sorted and name matching Used slots,
        // and the used-area counter equals the placement sum.
        if vacant
            .iter()
            .any(|&i| slots[ix(i)].state != SlotState::Vacant)
        {
            return Err(SnapError::new("guillotine vacant list"));
        }
        for (b, bucket) in buckets.iter().enumerate() {
            for (pos, &i) in bucket.iter().enumerate() {
                let slot = &slots[ix(i)];
                if slot.state != (SlotState::Free { bucket_pos: pos })
                    || bucket_of(slot.rect.area()) != b
                {
                    return Err(SnapError::new("guillotine bucket index"));
                }
            }
        }
        let mut sum = 0u64;
        for (at, &(pod, i)) in pods.iter().enumerate() {
            if at > 0 && pods[at - 1].0 >= pod {
                return Err(SnapError::new("guillotine pod order"));
            }
            let slot = &slots[ix(i)];
            if slot.state != (SlotState::Used { pod }) {
                return Err(SnapError::new("guillotine pod binding"));
            }
            sum = sum
                .checked_add(slot.rect.area())
                .ok_or_else(|| SnapError::new("guillotine area overflow"))?;
        }
        if sum != used_area {
            return Err(SnapError::new("guillotine used area"));
        }
        Ok(GuillotineAlloc {
            width,
            height,
            slots,
            vacant,
            buckets,
            pods,
            used_area,
            fit_rule,
            merges,
            exact_fallbacks,
            merge_scratch: Vec::new(),
        })
    }
}

/// The union of two rectangles sharing a full edge, if they do.
fn merged_rect(a: &Rect, b: &Rect) -> Option<Rect> {
    if a.x == b.x && a.w == b.w {
        if a.top() == b.y {
            return Some(Rect::new(a.x, a.y, a.w, a.h + b.h));
        }
        if b.top() == a.y {
            return Some(Rect::new(a.x, b.y, a.w, a.h + b.h));
        }
    }
    if a.y == b.y && a.h == b.h {
        if a.right() == b.x {
            return Some(Rect::new(a.x, a.y, a.w + b.w, a.h));
        }
        if b.right() == a.x {
            return Some(Rect::new(b.x, a.y, a.w + b.w, a.h));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conservation(g: &GuillotineAlloc) {
        let free_sum: u64 = g.free_rects().iter().map(Rect::area).sum();
        assert_eq!(free_sum + g.used_area(), g.capacity());
        let free = g.free_rects();
        for (i, a) in free.iter().enumerate() {
            for b in free.iter().skip(i + 1) {
                assert!(!a.intersects(b), "free pieces overlap: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn first_placement_splits_bottom_left() {
        let mut g = GuillotineAlloc::standard();
        let r = g.place(PodId(0), 40, 12).unwrap();
        assert_eq!(r, Rect::new(0, 0, 40, 12));
        assert_eq!(g.used_area(), 480);
        assert_eq!(g.free_area(), 10_000 - 480);
        // Narrower leftover axis (60 wide vs 88 tall) keeps the full
        // strip: full-width top + short right beside the pod.
        assert_eq!(g.free_piece_count(), 2);
        conservation(&g);
    }

    #[test]
    fn release_merges_back_to_whole_plane() {
        let mut g = GuillotineAlloc::standard();
        let pods = [(40u32, 12u32), (25, 30), (10, 95), (20, 20)];
        for (i, &(w, h)) in pods.iter().enumerate() {
            assert!(
                g.place(PodId(u64::try_from(i).unwrap()), w, h).is_some(),
                "pod {i} must fit"
            );
        }
        conservation(&g);
        for i in 0..pods.len() {
            g.release(PodId(u64::try_from(i).unwrap())).unwrap();
            conservation(&g);
        }
        assert_eq!(g.free_area(), g.capacity());
        assert_eq!(g.free_piece_count(), 1, "merges must reconsolidate");
        assert_eq!(g.largest_free_slot_area(), 10_000);
        assert!(g.merge_count() > 0);
    }

    #[test]
    fn exact_fallback_finds_l_shape_placement() {
        let mut g = GuillotineAlloc::standard();
        // Occupy (20,20)..(100,100): free space is an L (left column
        // 20×100 + bottom row 100×20) carved into two disjoint pieces.
        assert!(g.place_at(PodId(0), Rect::new(20, 20, 80, 80)));
        assert_eq!(g.free_piece_count(), 2);
        // A 100×20 demand fits no single disjoint piece…
        assert!(g.best_fit(100, 20).is_none());
        // …but the maximal rectangle (0,0,100,20) exists, so the exact
        // fallback must accept it.
        let r = g.place(PodId(1), 100, 20).unwrap();
        assert_eq!(r, Rect::new(0, 0, 100, 20));
        assert_eq!(g.exact_fallback_count(), 1);
        conservation(&g);
    }

    #[test]
    fn place_rejects_only_infeasible_demands() {
        let mut g = GuillotineAlloc::standard();
        assert!(g.place(PodId(0), 60, 100).is_some());
        assert!(g.place(PodId(1), 50, 10).is_none(), "only 40 wide remains");
        assert!(g.place(PodId(2), 40, 100).is_some());
        assert_eq!(g.free_area(), 0);
        assert!(g.place(PodId(3), 1, 1).is_none());
        conservation(&g);
    }

    #[test]
    fn place_at_mirrors_gpurects_contract() {
        let mut g = GuillotineAlloc::standard();
        assert!(g.place_at(PodId(0), Rect::new(10, 10, 30, 30)));
        // Overlap, out-of-bounds, duplicate pod and degenerate rects all
        // refuse without mutating.
        assert!(!g.place_at(PodId(1), Rect::new(20, 20, 30, 30)));
        assert!(!g.place_at(PodId(1), Rect::new(90, 90, 20, 20)));
        assert!(!g.place_at(PodId(0), Rect::new(50, 50, 10, 10)));
        assert!(!g.place_at(PodId(1), Rect::new(0, 0, 0, 5)));
        assert_eq!(g.used_area(), 900);
        conservation(&g);
    }

    #[test]
    fn handles_go_stale_after_release() {
        let mut g = GuillotineAlloc::standard();
        g.place(PodId(7), 10, 10).unwrap();
        let handle = g.handle_of(PodId(7)).unwrap();
        assert_eq!(g.release_by_handle(handle), Some(Rect::new(0, 0, 10, 10)));
        // Double free through the stale handle is rejected.
        assert_eq!(g.release_by_handle(handle), None);
        assert_eq!(g.pod_count(), 0);
        assert_eq!(g.free_area(), g.capacity());
    }

    #[test]
    fn counters_track_placement_identity() {
        let mut g = GuillotineAlloc::standard();
        let r = g.place(PodId(3), 33, 44).unwrap();
        assert_eq!(g.placement_of(PodId(3)), Some(r));
        assert_eq!(g.placements().collect::<Vec<_>>(), vec![(PodId(3), r)]);
        assert_eq!(g.pod_count(), 1);
        assert_eq!(g.release(PodId(3)), Some(r));
        assert_eq!(g.release(PodId(3)), None);
    }

    #[test]
    fn fragmentation_guards_and_reports_exactly() {
        let g = GuillotineAlloc::standard();
        assert!(g.fragmentation().abs() < 1e-12, "empty plane unfragmented");
        let mut g = GuillotineAlloc::standard();
        // Fill completely: free == 0 must not divide by zero.
        assert!(g.place(PodId(0), 100, 100).is_some());
        assert!(g.fragmentation().abs() < 1e-12);
        g.release(PodId(0)).unwrap();
        // L-shaped free space: exact metric uses maximal rects (the
        // 20×100 arm), not the disjoint pieces.
        let mut g = GuillotineAlloc::standard();
        assert!(g.place_at(PodId(0), Rect::new(20, 20, 80, 80)));
        let free = g.free_area() as f64;
        let expect = 1.0 - 2000.0 / free;
        assert!((g.fragmentation() - expect).abs() < 1e-12);
    }

    #[test]
    fn churn_reuses_slab_slots() {
        let mut g = GuillotineAlloc::standard();
        for round in 0u64..50 {
            for k in 0u64..8 {
                assert!(g.place(PodId(round * 8 + k), 20, 20).is_some());
            }
            for k in 0u64..8 {
                assert!(g.release(PodId(round * 8 + k)).is_some());
            }
            conservation(&g);
        }
        assert_eq!(g.free_area(), g.capacity());
        // The slab must not grow linearly with operations: slots recycle.
        assert!(
            g.slots.len() < 64,
            "slab leaked slots: {} live after churn",
            g.slots.len()
        );
    }
}
