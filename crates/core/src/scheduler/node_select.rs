//! Node selection: lifting Algorithm 2 across every GPU in the cluster.

use super::arena::SchedStats;
use super::rects::{GpuRects, Rect};
use fastg_cluster::{NodeId, PodId, ResourceSpec};
use fastg_des::snap::{Snap, SnapError, SnapReader, SnapWriter};
use fastg_des::IdArena;
use std::cell::Cell;

/// How pods are bound to GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// FaST-Scheduler: global best-area-fit over the maximal-rectangle
    /// lists of all GPUs (Algorithm 2), preferring GPUs that already host
    /// rectangles so shared GPUs fill up before new ones are opened.
    MaximalRectangles,
    /// First-fit baseline for the fragmentation ablation: the first GPU
    /// (lowest id) with any fitting free rectangle.
    FirstFit,
    /// KubeShare-style time sharing: every pod is widened to the full SM
    /// axis (no spatial sharing), so packing degenerates to quota-only.
    TimeSharingOnly,
}

/// The multi-GPU placement engine (the paper's reference implementation;
/// the guillotine arena in [`super::arena`] is the fleet-scale path).
#[derive(Debug)]
pub struct NodeSelector {
    policy: PlacementPolicy,
    /// Per-node GPU state in a dense slab; iteration ascends node ids,
    /// matching the ordered-map behaviour the digests were pinned under.
    gpus: IdArena<NodeId, GpuRects>,
    placements: u64,
    releases: u64,
    /// Fit probes during selection (`Cell`: selection is read-only).
    probes: Cell<u64>,
    rejects: Cell<u64>,
}

impl NodeSelector {
    /// Creates a selector with no GPUs.
    pub fn new(policy: PlacementPolicy) -> Self {
        NodeSelector {
            policy,
            gpus: IdArena::new(),
            placements: 0,
            releases: 0,
            probes: Cell::new(0),
            rejects: Cell::new(0),
        }
    }

    /// Registers a GPU (one per node).
    pub fn add_gpu(&mut self, node: NodeId) {
        self.gpus.insert(node, GpuRects::standard());
    }

    /// Removes a node's GPU from the placement pool (node crash): all its
    /// rectangle bindings are discarded and no future placement considers
    /// it. No-op if the node was never registered.
    pub fn remove_gpu(&mut self, node: NodeId) {
        self.gpus.remove(node);
    }

    /// The placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Converts a resource spec to rectangle units. Width is the
    /// *guaranteed* quota (the request) in percent — the elastic region up
    /// to the limit is opportunistic and not reserved; height is the SM
    /// partition in percent. Under time-sharing-only the height is pinned
    /// to the full SM axis. Specs with a zero request reserve one unit.
    pub fn demand_of(&self, spec: &ResourceSpec) -> (u32, u32) {
        // f64→u32 `as` saturates, and both axes are clamped to ..=100
        // below, so the casts cannot smuggle in out-of-range demand.
        // fastg-lint: allow(no-lossy-cast)
        let w = (spec.quota_request * 100.0).round().max(1.0) as u32;
        let h = match self.policy {
            PlacementPolicy::TimeSharingOnly => 100,
            // fastg-lint: allow(no-lossy-cast)
            _ => spec.sm_partition.round().max(1.0) as u32,
        };
        (w.min(100), h.min(100))
    }

    /// Binds `pod` with resource demand `spec` to a GPU. `mem_fits`
    /// filters nodes by device-memory availability (the caller knows the
    /// model-sharing-adjusted footprint). Returns the binding, or `None`
    /// when every GPU is too full ("a new GPU required").
    pub fn place(
        &mut self,
        pod: PodId,
        spec: &ResourceSpec,
        mem_fits: impl FnMut(NodeId) -> bool,
    ) -> Option<(NodeId, Rect)> {
        let node = self.select_node(spec, mem_fits)?;
        let rect = self.bind(node, pod, spec)?;
        Some((node, rect))
    }

    /// Phase 1 of placement: picks the target GPU without mutating state
    /// (so the caller can create the pod and obtain its id first).
    pub fn select_node(
        &self,
        spec: &ResourceSpec,
        mut mem_fits: impl FnMut(NodeId) -> bool,
    ) -> Option<NodeId> {
        let (w, h) = self.demand_of(spec);
        let probe = |g: &GpuRects| {
            self.probes.set(self.probes.get() + 1);
            g.best_fit(w, h)
        };
        let chosen = match self.policy {
            PlacementPolicy::MaximalRectangles | PlacementPolicy::TimeSharingOnly => {
                // Global best fit: minimum secondCores slack across every
                // free rectangle of every (memory-feasible) GPU; ties go
                // to the busier GPU, then the lower node id, which keeps
                // pods consolidating instead of spreading.
                self.gpus
                    .iter()
                    .filter(|&(n, _)| mem_fits(n))
                    .filter_map(|(n, g)| {
                        probe(g).map(|(_, slack)| (slack, std::cmp::Reverse(g.pod_count()), n))
                    })
                    .min()
                    .map(|(_, _, n)| n)
            }
            PlacementPolicy::FirstFit => self
                .gpus
                .iter()
                .filter(|&(n, _)| mem_fits(n))
                .find(|(_, g)| probe(g).is_some())
                .map(|(n, _)| n),
        };
        if chosen.is_none() {
            self.rejects.set(self.rejects.get() + 1);
        }
        chosen
    }

    /// Phase 2 of placement: binds `pod` on a specific GPU (chosen by
    /// [`Self::select_node`]). Returns `None` if that GPU cannot fit the
    /// demand after all.
    pub fn bind(&mut self, node: NodeId, pod: PodId, spec: &ResourceSpec) -> Option<Rect> {
        let (w, h) = self.demand_of(spec);
        let rect = self.gpus.get_mut(node)?.place(pod, w, h);
        if rect.is_some() {
            self.placements += 1;
        }
        rect
    }

    /// Releases a pod's rectangle on `node` (keep-restructure policy
    /// applies inside [`GpuRects::release`]).
    pub fn release(&mut self, node: NodeId, pod: PodId) -> Option<Rect> {
        let rect = self.gpus.get_mut(node)?.release(pod);
        if rect.is_some() {
            self.releases += 1;
        }
        rect
    }

    /// Per-GPU state, for reports and tests.
    pub fn gpu(&self, node: NodeId) -> Option<&GpuRects> {
        self.gpus.get(node)
    }

    /// Number of GPUs hosting at least one pod.
    pub fn gpus_in_use(&self) -> usize {
        self.gpus.values().filter(|g| g.pod_count() > 0).count()
    }

    /// Total bound area across all GPUs.
    pub fn total_used_area(&self) -> u64 {
        self.gpus.values().map(|g| g.used_area()).sum()
    }

    /// Mean fragmentation across GPUs that have free space.
    pub fn mean_fragmentation(&self) -> f64 {
        let frags: Vec<f64> = self
            .gpus
            .values()
            .filter(|g| g.free_area() > 0)
            .map(|g| g.fragmentation())
            .collect();
        if frags.is_empty() {
            0.0
        } else {
            frags.iter().sum::<f64>() / frags.len() as f64
        }
    }

    /// Counter snapshot in the arena's uniform shape.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            placements: self.placements,
            releases: self.releases,
            rejects: self.rejects.get(),
            probes: self.probes.get(),
            exact_fallbacks: 0,
            merges: 0,
            restructures: self.gpus.values().map(GpuRects::restructure_count).sum(),
        }
    }

    /// Encodes the per-GPU rectangle state and counters (the policy is
    /// reconstructed from platform config on restore).
    pub fn snap_state(&self, w: &mut SnapWriter) {
        self.gpus.snap(w);
        w.u64(self.placements);
        w.u64(self.releases);
        w.u64(self.probes.get());
        w.u64(self.rejects.get());
    }

    /// Restores state written by [`Self::snap_state`].
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.gpus = IdArena::unsnap(r)?;
        self.placements = r.u64()?;
        self.releases = r.u64()?;
        self.probes = Cell::new(r.u64()?);
        self.rejects = Cell::new(r.u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(sm: f64, quota: f64) -> ResourceSpec {
        ResourceSpec::new(sm, quota, quota, 0)
    }

    fn selector(policy: PlacementPolicy, gpus: u32) -> NodeSelector {
        let mut s = NodeSelector::new(policy);
        for i in 0..gpus {
            s.add_gpu(NodeId(i));
        }
        s
    }

    /// The Figure 11 pod set, submitted in descending area order (as the
    /// FaST-Scheduler does).
    fn fig11_pods() -> Vec<(PodId, ResourceSpec)> {
        let mut pods = Vec::new();
        for i in 0..2u64 {
            pods.push((PodId(i), spec(50.0, 0.6))); // BERT
        }
        for i in 2..4u64 {
            pods.push((PodId(i), spec(24.0, 0.4))); // RNNT
        }
        for i in 4..8u64 {
            pods.push((PodId(i), spec(12.0, 0.4))); // ResNet
        }
        pods
    }

    /// The Figure 11 scenario: FaST packs the whole pod set onto one GPU…
    #[test]
    fn fig11_fast_uses_one_gpu() {
        let mut s = selector(PlacementPolicy::MaximalRectangles, 4);
        for (pod, sp) in &fig11_pods() {
            assert!(s.place(*pod, sp, |_| true).is_some());
        }
        assert_eq!(s.gpus_in_use(), 1, "FaST should consolidate onto one GPU");
    }

    /// …while time sharing (no spatial dimension) needs all four.
    #[test]
    fn fig11_time_sharing_uses_four_gpus() {
        let mut s = selector(PlacementPolicy::TimeSharingOnly, 4);
        for (pod, sp) in &fig11_pods() {
            assert!(s.place(*pod, sp, |_| true).is_some(), "pod {pod:?}");
        }
        assert_eq!(s.gpus_in_use(), 4);
    }

    #[test]
    fn consolidates_before_opening_new_gpu() {
        let mut s = selector(PlacementPolicy::MaximalRectangles, 3);
        let (n0, _) = s.place(PodId(0), &spec(20.0, 0.5), |_| true).unwrap();
        let (n1, _) = s.place(PodId(1), &spec(20.0, 0.5), |_| true).unwrap();
        assert_eq!(n0, n1, "second pod should share the first GPU");
    }

    #[test]
    fn memory_filter_excludes_nodes() {
        let mut s = selector(PlacementPolicy::MaximalRectangles, 2);
        let full = NodeId(0);
        let (n, _) = s
            .place(PodId(0), &spec(10.0, 0.5), |node| node != full)
            .unwrap();
        assert_eq!(n, NodeId(1));
    }

    #[test]
    fn new_gpu_required_when_everything_full() {
        let mut s = selector(PlacementPolicy::MaximalRectangles, 1);
        s.place(PodId(0), &spec(100.0, 1.0), |_| true).unwrap();
        assert!(s.place(PodId(1), &spec(10.0, 0.1), |_| true).is_none());
        s.release(NodeId(0), PodId(0)).unwrap();
        assert!(s.place(PodId(1), &spec(10.0, 0.1), |_| true).is_some());
    }

    #[test]
    fn first_fit_spreads_less_carefully() {
        // First-fit picks GPU 0 while it fits anything, even when GPU 1
        // has a tighter slot — this is what the ablation measures.
        let mut s = selector(PlacementPolicy::FirstFit, 2);
        let (n, _) = s.place(PodId(0), &spec(10.0, 0.1), |_| true).unwrap();
        assert_eq!(n, NodeId(0));
    }

    #[test]
    fn demand_quantization() {
        let s = selector(PlacementPolicy::MaximalRectangles, 0);
        assert_eq!(s.demand_of(&ResourceSpec::new(12.0, 0.4, 0.4, 0)), (40, 12));
        assert_eq!(s.demand_of(&ResourceSpec::new(0.5, 0.004, 0.004, 0)), (1, 1));
        let ts = selector(PlacementPolicy::TimeSharingOnly, 0);
        assert_eq!(ts.demand_of(&ResourceSpec::new(12.0, 0.4, 0.4, 0)), (40, 100));
    }

    #[test]
    fn counters_survive_the_full_cycle() {
        let mut s = selector(PlacementPolicy::MaximalRectangles, 2);
        s.place(PodId(0), &spec(100.0, 1.0), |_| true).unwrap();
        s.place(PodId(1), &spec(100.0, 1.0), |_| true).unwrap();
        assert!(s.place(PodId(2), &spec(100.0, 1.0), |_| true).is_none());
        s.release(NodeId(0), PodId(0)).unwrap();
        let stats = s.stats();
        assert_eq!(stats.placements, 2);
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.rejects, 1);
        assert!(stats.probes >= 3, "each selection probes candidate GPUs");
    }
}
