// Fixture: matches over `Event` list every variant (inner `(_)` binders
// are fine), and wildcard arms over non-event types are allowed;
// `exhaustive-event-match` must stay silent.

pub enum Event {
    Arrival(u64),
    KernelFinish(u64),
    Fault,
}

pub fn class(e: &Event) -> u8 {
    match e {
        Event::Fault => 0,
        Event::Arrival(_) => 1,
        Event::KernelFinish(_) => 2,
    }
}

pub fn is_zero(x: Option<u64>) -> bool {
    match x {
        Some(0) => true,
        _ => false,
    }
}
