//! Clean fixture for `exhaustive-snapshot-fields`: snapshot bodies
//! destructure every field explicitly; ranges and slices inside them
//! stay legal, and rest patterns outside snapshot bodies are fine.

pub struct DeviceState {
    pub quota: u64,
    pub used: u64,
    pub generation: u64,
}

impl DeviceState {
    pub fn snap(&self, w: &mut Vec<u64>) {
        let DeviceState {
            quota,
            used,
            generation,
        } = self;
        w.push(*quota);
        w.push(*used);
        w.push(*generation);
    }

    pub fn snap_state(&self, w: &mut Vec<u64>) {
        // Ranges, slice indexing and `..=` are not rest patterns.
        for i in 0..2 {
            w.push(i);
        }
        let head = &w[..1];
        if matches!(head.len(), 0..=4) {
            w.push(self.quota);
        }
    }

    pub fn unsnap_state(r: &mut Vec<u64>) -> Option<DeviceState> {
        let generation = r.pop()?;
        let used = r.pop()?;
        let quota = r.pop()?;
        Some(DeviceState {
            quota,
            used,
            generation,
        })
    }

    /// Rest patterns outside snapshot bodies are a style choice, not a
    /// serialization hazard.
    pub fn summary(&self) -> u64 {
        let DeviceState { quota, .. } = self;
        *quota
    }
}
