// Violating fixture for `no-btreemap-hot-path`: ordered-tree collections
// on a per-event hot path. Expected findings: 3.

use std::collections::BTreeMap;

pub struct Engine {
    pods: BTreeMap<u64, u64>,
}

impl Engine {
    pub fn busy_set(&self) -> std::collections::BTreeSet<u64> {
        self.pods.keys().copied().collect()
    }
}
