// Fixture: randomized-order collections `no-unordered-iter` must flag
// (4 findings: two in the use list, two in the signature).
use std::collections::{HashMap, HashSet};

pub fn build(keys: &[u32]) -> (HashMap<u32, u32>, HashSet<u32>) {
    (
        keys.iter().map(|&k| (k, k)).collect(),
        keys.iter().copied().collect(),
    )
}
