// Clean fixture for `no-btreemap-hot-path`: hot state in dense arena
// storage, with one cold report-assembly map behind the allow escape.

pub struct Engine {
    pods: Vec<Option<u64>>,
    generations: Vec<u32>,
}

impl Engine {
    pub fn lookup(&self, index: usize) -> Option<u64> {
        self.pods.get(index).copied().flatten()
    }

    pub fn report(&self) -> usize {
        // fastg-lint: allow(no-btreemap-hot-path)
        let cold: std::collections::BTreeMap<usize, u64> = self
            .pods
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|v| (i, v)))
            .collect();
        cold.len() + self.generations.len()
    }
}
