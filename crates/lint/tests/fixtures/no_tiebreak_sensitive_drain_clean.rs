// Fixture: every time-keyed comparator chains a discriminating key, so
// equal-time order is explicit; `no-tiebreak-sensitive-drain` must stay
// silent.

pub struct Entry {
    pub time: u64,
    pub seq: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

pub fn drain(entries: &mut Vec<Entry>) -> Option<u64> {
    entries.sort_by_key(|e| (e.time, e.seq));
    let first = entries.iter().min_by_key(|e| (e.time, e.seq))?;
    let last = entries.iter().max_by_key(|e| e.seq)?;
    Some(last.time - first.time)
}

pub fn spread(entries: &[Entry]) -> std::cmp::Ordering {
    entries[0]
        .time
        .cmp(&entries[1].time)
        .then_with(|| entries[0].seq.cmp(&entries[1].seq))
}
