// Fixture: every construct `no-panic-in-lib` must flag (8 findings).
pub fn lookup(map: &[(u32, u32)], k: u32) -> u32 {
    let a = map.iter().find(|(key, _)| *key == k).map(|(_, v)| v).unwrap();
    let b = map.iter().find(|(key, _)| *key == k).map(|(_, v)| v).expect("key present");
    if *a != *b {
        panic!("mismatch");
    }
    match k {
        0 => todo!(),
        1 => unimplemented!(),
        2 => unreachable!(),
        _ => {}
    }
    assert!(*a > 0);
    assert_eq!(*a, *b);
    *a
}
