// Fixture: comparators keyed by `time` alone — equal-time order is left
// to the container. `no-tiebreak-sensitive-drain` must flag (4 findings:
// one bare `.time.cmp(..)`, three `*_by_key(|e| e.time)` drains).

pub struct Entry {
    pub time: u64,
    pub seq: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time)
    }
}

pub fn drain(entries: &mut Vec<Entry>) -> Option<u64> {
    entries.sort_by_key(|e| e.time);
    let first = entries.iter().min_by_key(|e| e.time)?;
    let last = entries.iter().max_by_key(|e| e.time)?;
    Some(last.time - first.time)
}
