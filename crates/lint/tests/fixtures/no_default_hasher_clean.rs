// Fixture: ordered collections carry no hasher seed; `no-default-hasher`
// must stay silent.
use std::collections::{BTreeMap, BTreeSet};

pub fn index(keys: &[u64]) -> BTreeMap<u64, usize> {
    keys.iter().enumerate().map(|(i, &k)| (k, i)).collect()
}

pub fn distinct(keys: &[u64]) -> BTreeSet<u64> {
    keys.iter().copied().collect()
}
