//! Violating fixture for `exhaustive-snapshot-fields`: snapshot
//! encode/decode bodies hiding fields behind `..` rest patterns — the
//! exact shape that lets a newly added state field silently skip
//! serialization. Expected findings: 3.

pub struct DeviceState {
    pub quota: u64,
    pub used: u64,
    pub generation: u64,
}

impl DeviceState {
    pub fn snap(&self, w: &mut Vec<u64>) {
        // `used` and `generation` never reach the wire.
        let DeviceState { quota, .. } = self;
        w.push(*quota);
    }

    pub fn snap_state(&self, w: &mut Vec<u64>) {
        match self {
            DeviceState { used, .. } => w.push(*used),
        }
    }

    pub fn unsnap_state(r: &mut Vec<u64>) -> Option<DeviceState> {
        let generation = r.pop()?;
        let used = r.pop()?;
        let quota = r.pop()?;
        let out = DeviceState {
            quota,
            used,
            generation,
        };
        let DeviceState { quota: _, .. } = &out;
        Some(out)
    }
}
