// Fixture: casts `no-lossy-cast` must NOT flag: float targets (accuracy
// loss, not truncation), `From`/`TryFrom`, and identifiers containing "as".
pub fn convert(quota: u64, basket: u32) -> (f64, u64, Result<u32, std::num::TryFromIntError>) {
    let ratio = quota as f64;
    let widened = u64::from(basket);
    let narrowed = u32::try_from(quota);
    (ratio, widened, narrowed)
}
