// Fixture: deterministic time use `no-wallclock` must NOT flag.
// `Duration` is a span, not a clock read, and is allowed; so is an
// identifier that merely contains the word (InstantaneousRate).
use std::time::Duration;

pub struct InstantaneousRate(pub f64);

pub fn span() -> Duration {
    Duration::from_millis(5)
}
