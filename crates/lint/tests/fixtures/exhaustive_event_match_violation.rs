// Fixture: wildcard arms in matches over `Event` — a new variant would
// be silently absorbed. `exhaustive-event-match` must flag (2 findings,
// one per match).

pub enum Event {
    Arrival(u64),
    KernelFinish(u64),
    Fault,
}

pub fn class(e: &Event) -> u8 {
    match e {
        Event::Fault => 0,
        Event::Arrival(_) => 1,
        _ => 2,
    }
}

pub fn label(e: &Event) -> &'static str {
    match e {
        Event::Arrival(_) => "arrival",
        _ => "other",
    }
}
