// Fixture: ordered collections `no-unordered-iter` must NOT flag.
use std::collections::{BTreeMap, BTreeSet};

pub fn build(keys: &[u32]) -> (BTreeMap<u32, u32>, BTreeSet<u32>) {
    (
        keys.iter().map(|&k| (k, k)).collect(),
        keys.iter().copied().collect(),
    )
}
