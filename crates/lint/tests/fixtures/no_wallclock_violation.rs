// Fixture: wall-clock time sources `no-wallclock` must flag (4 findings).
use std::time::Instant;
use std::time::SystemTime;

pub fn now_pair() -> (Instant, u64) {
    (std::time::Instant::now(), 0)
}
