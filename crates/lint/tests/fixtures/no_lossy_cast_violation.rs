// Fixture: truncating integer casts `no-lossy-cast` must flag (3 findings).
pub fn truncate(quota: u64, tokens: i64, idx: usize) -> (u32, i32, u32) {
    (quota as u32, tokens as i32, idx as u32)
}
