// Fixture: default-hasher collections in non-deterministic library code
// `no-default-hasher` must flag (3 findings: two in the use list, one in
// the signature). Scanned with a lib-only scope — inside the
// deterministic crates `no-unordered-iter` owns these tokens instead.
use std::collections::{HashMap, HashSet};

pub fn index(keys: &[u64]) -> HashMap<u64, usize> {
    keys.iter().enumerate().map(|(i, &k)| (k, i)).collect()
}
