// Fixture: panic-adjacent constructs `no-panic-in-lib` must NOT flag.
pub fn lookup(map: &std::collections::BTreeMap<u32, u32>, k: u32) -> Option<u32> {
    let a = map.get(&k).copied().unwrap_or(0);
    let b = map.get(&k).copied().unwrap_or_else(|| 0);
    let c = map.get(&k).copied().unwrap_or_default();
    debug_assert!(a == b, "debug-only invariant check is fine");
    debug_assert_eq!(b, c);
    debug_assert_ne!(a, u32::MAX);
    // A comment mentioning .unwrap() and panic! is not code.
    let s = "strings with panic! and .unwrap() are not code";
    let _ = s;
    map.get(&k).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        v.expect("tests may expect");
        panic!("tests may panic");
    }
}
