// Fixture: exact float comparisons `no-float-eq` must flag (3 findings).
pub fn checks(x: f64, y: f64, n: u32) -> bool {
    let a = x == 1.0;
    let b = 0.5 != y;
    let c = n as f64 == y;
    a || b || c
}
