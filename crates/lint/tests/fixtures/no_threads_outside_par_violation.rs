// Fixture: raw threading primitives `no-threads-outside-par` must flag
// (8 findings: Mutex ×2, RwLock ×2, Condvar ×2, mpsc, thread).
use std::sync::{Condvar, Mutex, RwLock};

pub fn spawn_worker() {
    let guard = Mutex::new(0u64);
    let lock = RwLock::new(0u64);
    let cv = Condvar::new();
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    std::thread::scope(|s| {
        let _ = (&guard, &lock, &cv, &tx, &rx, s);
    });
}
