// Fixture: comparisons `no-float-eq` must NOT flag: epsilon tests,
// ordering operators on floats, and integer equality.
pub fn checks(x: f64, y: f64, n: u32) -> bool {
    let a = (x - 1.0).abs() < 1e-9;
    let b = x <= 0.5 || y >= 2.0;
    let c = n == 3;
    a || b || c
}
