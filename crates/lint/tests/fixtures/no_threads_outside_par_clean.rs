// Fixture: deterministic parallelism `no-threads-outside-par` must NOT
// flag. `Arc` (immutable sharing) is allowed, plural identifiers like
// `threads` are not the banned token, and `fastg_par` is the sanctioned
// entry point for worker threads.
use std::sync::Arc;

pub fn sweep(threads: usize, items: Vec<u64>) -> Vec<u64> {
    let shared = Arc::new(items);
    fastg_par::par_map((0..shared.len()).collect(), threads, |_, i| shared[i] * 2)
}
