//! Fixture-based self-tests: every rule has a violating fixture (known
//! finding count) and a clean fixture (zero findings for that rule), plus
//! an end-to-end round trip of `lint-baseline.json` through the real
//! `--update-baseline` / `--check` CLI.

use fastg_lint::{
    scan_file, FileScope, EXHAUSTIVE_EVENT_MATCH, EXHAUSTIVE_SNAPSHOT_FIELDS,
    NO_BTREEMAP_HOT_PATH, NO_DEFAULT_HASHER, NO_FLOAT_EQ, NO_LOSSY_CAST, NO_PANIC, NO_THREADS,
    NO_TIEBREAK_DRAIN, NO_UNORDERED_ITER, NO_WALLCLOCK,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rule_hits(name: &str, rule: &str) -> usize {
    scan_file(name, &fixture(name), FileScope::full())
        .iter()
        .filter(|d| d.rule == rule)
        .count()
}

#[test]
fn no_panic_fixture_pair() {
    assert_eq!(rule_hits("no_panic_violation.rs", NO_PANIC), 8);
    assert_eq!(rule_hits("no_panic_clean.rs", NO_PANIC), 0);
}

#[test]
fn no_wallclock_fixture_pair() {
    assert_eq!(rule_hits("no_wallclock_violation.rs", NO_WALLCLOCK), 4);
    assert_eq!(rule_hits("no_wallclock_clean.rs", NO_WALLCLOCK), 0);
}

#[test]
fn no_unordered_iter_fixture_pair() {
    assert_eq!(rule_hits("no_unordered_iter_violation.rs", NO_UNORDERED_ITER), 4);
    assert_eq!(rule_hits("no_unordered_iter_clean.rs", NO_UNORDERED_ITER), 0);
}

#[test]
fn no_float_eq_fixture_pair() {
    assert_eq!(rule_hits("no_float_eq_violation.rs", NO_FLOAT_EQ), 3);
    assert_eq!(rule_hits("no_float_eq_clean.rs", NO_FLOAT_EQ), 0);
}

#[test]
fn no_lossy_cast_fixture_pair() {
    assert_eq!(rule_hits("no_lossy_cast_violation.rs", NO_LOSSY_CAST), 3);
    assert_eq!(rule_hits("no_lossy_cast_clean.rs", NO_LOSSY_CAST), 0);
}

#[test]
fn no_threads_outside_par_fixture_pair() {
    assert_eq!(rule_hits("no_threads_outside_par_violation.rs", NO_THREADS), 8);
    assert_eq!(rule_hits("no_threads_outside_par_clean.rs", NO_THREADS), 0);
}

#[test]
fn no_default_hasher_fixture_pair() {
    // The rule only applies to library code *outside* the deterministic
    // crates (inside them `no-unordered-iter` owns these tokens), so the
    // pair is scanned with a lib-only scope rather than `full()`.
    let lib_only = FileScope {
        lib_code: true,
        deterministic: false,
        threads_banned: false,
        hot_path: false,
    };
    let hits = |name: &str, rule: &str| {
        scan_file(name, &fixture(name), lib_only)
            .iter()
            .filter(|d| d.rule == rule)
            .count()
    };
    assert_eq!(hits("no_default_hasher_violation.rs", NO_DEFAULT_HASHER), 3);
    assert_eq!(hits("no_default_hasher_clean.rs", NO_DEFAULT_HASHER), 0);
    // In deterministic scope the rule stands down entirely.
    assert_eq!(
        rule_hits("no_default_hasher_violation.rs", NO_DEFAULT_HASHER),
        0
    );
}

#[test]
fn no_tiebreak_sensitive_drain_fixture_pair() {
    assert_eq!(
        rule_hits("no_tiebreak_sensitive_drain_violation.rs", NO_TIEBREAK_DRAIN),
        4
    );
    assert_eq!(
        rule_hits("no_tiebreak_sensitive_drain_clean.rs", NO_TIEBREAK_DRAIN),
        0
    );
}

#[test]
fn no_btreemap_hot_path_fixture_pair() {
    assert_eq!(
        rule_hits("no_btreemap_hot_path_violation.rs", NO_BTREEMAP_HOT_PATH),
        3
    );
    assert_eq!(
        rule_hits("no_btreemap_hot_path_clean.rs", NO_BTREEMAP_HOT_PATH),
        0
    );
    // Off the hot path the rule stands down entirely.
    let cold = FileScope {
        lib_code: true,
        deterministic: true,
        threads_banned: true,
        hot_path: false,
    };
    let diags = scan_file(
        "no_btreemap_hot_path_violation.rs",
        &fixture("no_btreemap_hot_path_violation.rs"),
        cold,
    );
    assert!(diags.iter().all(|d| d.rule != NO_BTREEMAP_HOT_PATH));
}

#[test]
fn exhaustive_event_match_fixture_pair() {
    assert_eq!(
        rule_hits("exhaustive_event_match_violation.rs", EXHAUSTIVE_EVENT_MATCH),
        2
    );
    assert_eq!(
        rule_hits("exhaustive_event_match_clean.rs", EXHAUSTIVE_EVENT_MATCH),
        0
    );
}

#[test]
fn exhaustive_snapshot_fields_fixture_pair() {
    assert_eq!(
        rule_hits(
            "exhaustive_snapshot_fields_violation.rs",
            EXHAUSTIVE_SNAPSHOT_FIELDS
        ),
        3
    );
    assert_eq!(
        rule_hits(
            "exhaustive_snapshot_fields_clean.rs",
            EXHAUSTIVE_SNAPSHOT_FIELDS
        ),
        0
    );
}

#[test]
fn violating_fixtures_have_no_cross_rule_noise() {
    // Each violating fixture triggers ONLY its own rule (so the pairs stay
    // honest as rules evolve). The lossy-cast fixture's `as f64` line in
    // no_float_eq_violation.rs is exercised on purpose and excluded here.
    for (file, rule) in [
        ("no_panic_violation.rs", NO_PANIC),
        ("no_wallclock_violation.rs", NO_WALLCLOCK),
        ("no_unordered_iter_violation.rs", NO_UNORDERED_ITER),
        ("no_lossy_cast_violation.rs", NO_LOSSY_CAST),
        ("no_threads_outside_par_violation.rs", NO_THREADS),
        ("no_tiebreak_sensitive_drain_violation.rs", NO_TIEBREAK_DRAIN),
        ("exhaustive_event_match_violation.rs", EXHAUSTIVE_EVENT_MATCH),
        ("no_btreemap_hot_path_violation.rs", NO_BTREEMAP_HOT_PATH),
        (
            "exhaustive_snapshot_fields_violation.rs",
            EXHAUSTIVE_SNAPSHOT_FIELDS,
        ),
    ] {
        let diags = scan_file(file, &fixture(file), FileScope::full());
        assert!(
            diags.iter().all(|d| d.rule == rule),
            "{file} unexpectedly triggers {:?}",
            diags
                .iter()
                .filter(|d| d.rule != rule)
                .collect::<Vec<_>>()
        );
    }
}

// ---------------------------------------------------------------------------
// CLI round trip: --update-baseline then --check on a synthetic tree.
// ---------------------------------------------------------------------------

struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("fastg-lint-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/gpu/src")).expect("mkdir");
        TempTree { root }
    }

    fn write(&self, rel: &str, content: &str) {
        fs::write(self.root.join(rel), content).expect("write fixture tree");
    }

    fn lint(&self, args: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_fastg-lint"))
            .arg("--root")
            .arg(&self.root)
            .args(args)
            .output()
            .expect("run fastg-lint")
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn baseline_round_trips_through_update_baseline_cli() {
    let tree = TempTree::new("roundtrip");
    tree.write(
        "crates/gpu/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );

    // Without a baseline, --check fails on the existing violation.
    let out = tree.lint(&["--check"]);
    assert!(!out.status.success(), "check must fail with no baseline");

    // --update-baseline allowlists it; --check then passes.
    let out = tree.lint(&["--update-baseline"]);
    assert!(out.status.success(), "update-baseline failed: {out:?}");
    let baseline_path = tree.root.join("lint-baseline.json");
    let text = fs::read_to_string(&baseline_path).expect("baseline written");
    let parsed = fastg_lint::Baseline::parse(&text).expect("baseline parses");
    assert_eq!(parsed.allowed(NO_PANIC, "crates/gpu/src/lib.rs"), 1);
    // The rendered form is canonical: parse -> render is the identity.
    assert_eq!(parsed.render(), text);

    let out = tree.lint(&["--check"]);
    assert!(out.status.success(), "check must pass at baseline: {out:?}");

    // A new violation in the same file exceeds the allowlisted count.
    tree.write(
        "crates/gpu/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\npub fn g(x: Option<u32>) -> u32 { x.expect(\"g\") }\n",
    );
    let out = tree.lint(&["--check"]);
    assert!(!out.status.success(), "check must fail over baseline");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-panic-in-lib"), "stderr: {stderr}");
}

#[test]
fn json_output_is_parseable_and_positioned() {
    let tree = TempTree::new("json");
    tree.write(
        "crates/gpu/src/lib.rs",
        "use std::time::Instant;\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let out = tree.lint(&["--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v = fastg_json::Value::parse(&stdout).expect("diagnostics JSON parses");
    let items = v.as_array().expect("array");
    assert_eq!(items.len(), 2);
    let rules: Vec<&str> = items
        .iter()
        .filter_map(|d| d.get("rule").and_then(|r| r.as_str()))
        .collect();
    assert!(rules.contains(&"no-wallclock") && rules.contains(&"no-panic-in-lib"));
    for d in items {
        assert!(d.get("line").and_then(|l| l.as_u64()).is_some());
        assert!(d.get("col").and_then(|c| c.as_u64()).is_some());
        assert_eq!(
            d.get("file").and_then(|f| f.as_str()),
            Some("crates/gpu/src/lib.rs")
        );
    }
}

#[test]
fn allow_escape_respected_end_to_end() {
    let tree = TempTree::new("allow");
    tree.write(
        "crates/gpu/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // fastg-lint: allow(no-panic-in-lib)\n",
    );
    let out = tree.lint(&["--check"]);
    assert!(out.status.success(), "allow escape must suppress: {out:?}");
}
