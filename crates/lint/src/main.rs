//! `fastg-lint` CLI: scans the workspace and checks diagnostics against the
//! checked-in baseline ratchet.
//!
//! ```text
//! fastg-lint                  # list every diagnostic (informational)
//! fastg-lint --check          # fail (exit 1) on any violation over baseline
//! fastg-lint --json           # machine-readable diagnostics on stdout
//! fastg-lint --update-baseline  # rewrite lint-baseline.json to current state
//! fastg-lint --baseline FILE  # use FILE instead of <root>/lint-baseline.json
//! fastg-lint --root DIR       # scan DIR instead of the workspace root
//! ```

use fastg_lint::{check, classify, diagnostics_json, scan_file, Baseline, Diagnostic};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    check: bool,
    json: bool,
    update_baseline: bool,
}

const USAGE: &str = "usage: fastg-lint [--check] [--json] [--update-baseline] \
[--baseline FILE] [--root DIR]";

fn parse_args() -> Result<Options, String> {
    let default_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let mut opts = Options {
        root: default_root,
        baseline: None,
        check: false,
        json: false,
        update_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--update-baseline" => opts.update_baseline = true,
            "--baseline" => {
                let path = args.next().ok_or("--baseline needs a file argument")?;
                opts.baseline = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = args.next().ok_or("--root needs a directory argument")?;
                opts.root = PathBuf::from(path);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", ".github"];

fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let root = opts
        .root
        .canonicalize()
        .map_err(|e| format!("cannot resolve root {}: {e}", opts.root.display()))?;
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut scanned = 0usize;
    for path in collect_sources(&root)? {
        let rel = relative(&root, &path);
        let Some(scope) = classify(&rel) else {
            continue;
        };
        let source =
            fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        scanned += 1;
        diags.extend(scan_file(&rel, &source, scope));
    }
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });

    if opts.update_baseline {
        let baseline = Baseline::from_diagnostics(&diags);
        fs::write(&baseline_path, baseline.render())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        eprintln!(
            "fastg-lint: wrote baseline with {} entries across {} rules to {}",
            baseline.total(),
            baseline.entries.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if opts.json {
        print!("{}", diagnostics_json(&diags));
        if !opts.check {
            return Ok(ExitCode::SUCCESS);
        }
    }

    if opts.check {
        let baseline = if baseline_path.exists() {
            let text = fs::read_to_string(&baseline_path)
                .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
            Baseline::parse(&text)?
        } else {
            Baseline::default()
        };
        let report = check(&diags, &baseline);
        for (rule, file, found, allowed) in &report.regressions {
            // Point at concrete positions for the offending (rule, file).
            for d in diags.iter().filter(|d| d.rule == *rule && d.file == *file) {
                eprintln!("{d}");
            }
            eprintln!(
                "fastg-lint: {file}: rule `{rule}` has {found} violations, baseline allows {allowed}"
            );
        }
        for (rule, file, found, allowed) in &report.stale {
            eprintln!(
                "fastg-lint: note: stale baseline entry {file} / `{rule}`: allows {allowed}, found {found} (run --update-baseline to tighten)"
            );
        }
        if report.passed() {
            eprintln!(
                "fastg-lint: OK — {} files scanned, {} findings, all within baseline ({})",
                scanned,
                diags.len(),
                baseline_path.display()
            );
            return Ok(ExitCode::SUCCESS);
        }
        eprintln!(
            "fastg-lint: FAILED — {} (rule, file) pair(s) over baseline",
            report.regressions.len()
        );
        return Ok(ExitCode::FAILURE);
    }

    if !opts.json {
        for d in &diags {
            println!("{d}");
        }
        eprintln!(
            "fastg-lint: {} files scanned, {} findings",
            scanned,
            diags.len()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("fastg-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
