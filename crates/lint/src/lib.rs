//! # fastg-lint — workspace-native static analysis
//!
//! A dependency-free, hand-rolled token scanner (no `syn`, consistent with
//! the offline-shims policy) that walks every workspace source file and
//! enforces the repo-specific invariants the paper's reproducibility rests
//! on. The DES replays event-for-event only while the runtime has no
//! unaccounted nondeterminism and no panic path that can kill the cluster
//! loop mid-run; these rules make both properties mechanically checkable:
//!
//! * **`no-panic-in-lib`** — `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   `todo!`/`unimplemented!` and release-mode `assert!` family macros are
//!   denied in library code. Tests, benches, examples, `src/bin/`
//!   entry points, `#[cfg(test)]` and `#[cfg(debug_assertions)]` blocks are
//!   exempt, and `debug_assert!` is always allowed (invariant checks belong
//!   in debug builds, not in the production cluster loop).
//! * **`no-wallclock`** — `std::time::{Instant, SystemTime}` are denied in
//!   the deterministic crates (`des`, `gpu`, `core`, `cluster`): all time
//!   must flow through `SimTime`.
//! * **`no-unordered-iter`** — `HashMap`/`HashSet` are denied in the
//!   deterministic crates; iteration order would leak randomization into
//!   the event stream. Use `BTreeMap`/`BTreeSet`.
//! * **`no-float-eq`** — `==`/`!=` against float literals (or expressions
//!   cast `as f64`/`as f32`) is denied everywhere; use an epsilon
//!   comparison.
//! * **`no-lossy-cast`** — integer `as` casts are denied everywhere; use
//!   `From`/`TryFrom` or widen the accumulator so quota/memory accounting
//!   can never silently truncate.
//! * **`no-threads-outside-par`** — `std::thread` and the blocking
//!   `std::sync` primitives (`Mutex`, `RwLock`, `Condvar`, channels,
//!   atomics) are denied in library code outside `crates/par`: all
//!   parallelism must flow through `fastg-par`, whose input-order result
//!   collection is what keeps sweeps byte-identical across thread counts.
//!   `Arc` stays allowed (immutable sharing is deterministic); binaries,
//!   tests and benches are exempt.
//! * **`no-default-hasher`** — `HashMap`/`HashSet` are denied in library
//!   code *outside* the deterministic crates too (inside them
//!   `no-unordered-iter` already applies): the default hasher is
//!   randomly seeded, so iteration order is a latent determinism race
//!   the moment such code migrates toward the core.
//! * **`no-tiebreak-sensitive-drain`** — comparators that order events by
//!   `time` alone (`.time.cmp(..)` without a `.then` chain, or
//!   `sort_by_key`/`min_by_key`/`max_by_key` keyed by a bare `.time`)
//!   are denied in the deterministic crates: equal-time order would be
//!   whatever the container happens to hold, i.e. a tie-break race.
//! * **`exhaustive-event-match`** — `_ =>` arms are denied in matches
//!   over the platform `Event` enum, so a new event variant cannot
//!   silently bypass the class ranking or sanitizer hooks.
//! * **`no-btreemap-hot-path`** — `BTreeMap`/`BTreeSet` are denied in
//!   the per-event hot-path files (the platform engine, gateway and
//!   backend): entity state there lives in dense arena storage behind
//!   generation-stamped handles (`IdArena`), where a lookup is an index,
//!   not a pointer-chasing tree walk. Cold report-assembly code keeps
//!   ordered maps behind a per-line allow escape.
//! * **`exhaustive-snapshot-fields`** — `..` rest patterns are denied
//!   inside snapshot encode/decode bodies (`snap`, `unsnap`,
//!   `snap_state`, `unsnap_state`, and their `_with`/`_cursor`
//!   variants): a rest pattern is exactly how a newly added state field
//!   silently skips serialization, so the codec destructures every
//!   struct exhaustively and a new field becomes a compile error, not a
//!   checkpoint that restores to a different simulation.
//!
//! Diagnostics carry `file:line:col` positions. Existing violations are
//! allowlisted per-rule-per-file in a checked-in baseline
//! (`lint-baseline.json`); any *new* violation fails `--check`. A per-line
//! `// fastg-lint: allow(rule)` escape hatch suppresses a single finding.

use std::collections::BTreeMap;
use std::fmt;

/// Deny panicking macros and methods in library code.
pub const NO_PANIC: &str = "no-panic-in-lib";
/// Deny wall-clock time sources in deterministic crates.
pub const NO_WALLCLOCK: &str = "no-wallclock";
/// Deny randomized-iteration-order collections in deterministic crates.
pub const NO_UNORDERED_ITER: &str = "no-unordered-iter";
/// Deny exact float comparison.
pub const NO_FLOAT_EQ: &str = "no-float-eq";
/// Deny integer `as` casts.
pub const NO_LOSSY_CAST: &str = "no-lossy-cast";
/// Deny raw threading/synchronization primitives outside `crates/par`.
pub const NO_THREADS: &str = "no-threads-outside-par";
/// Deny std-default-hasher collections in library code everywhere (the
/// non-deterministic-crate complement of `no-unordered-iter`).
pub const NO_DEFAULT_HASHER: &str = "no-default-hasher";
/// Deny time-only comparators over event-like orderings in deterministic
/// crates (missing tie-break keys are latent races).
pub const NO_TIEBREAK_DRAIN: &str = "no-tiebreak-sensitive-drain";
/// Deny wildcard arms in matches over the platform `Event` enum.
pub const EXHAUSTIVE_EVENT_MATCH: &str = "exhaustive-event-match";
/// Deny tree-walk collections in the per-event hot-path files.
pub const NO_BTREEMAP_HOT_PATH: &str = "no-btreemap-hot-path";
/// Deny `..` rest patterns inside snapshot encode/decode bodies.
pub const EXHAUSTIVE_SNAPSHOT_FIELDS: &str = "exhaustive-snapshot-fields";

/// Every rule, in diagnostic order.
pub const RULES: [&str; 11] = [
    NO_PANIC,
    NO_WALLCLOCK,
    NO_UNORDERED_ITER,
    NO_FLOAT_EQ,
    NO_LOSSY_CAST,
    NO_THREADS,
    NO_DEFAULT_HASHER,
    NO_TIEBREAK_DRAIN,
    EXHAUSTIVE_EVENT_MATCH,
    NO_BTREEMAP_HOT_PATH,
    EXHAUSTIVE_SNAPSHOT_FIELDS,
];

/// One finding at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (bytes).
    pub col: usize,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// `no-panic-in-lib` applies (library code, not a `src/bin/` target).
    pub lib_code: bool,
    /// `no-wallclock` / `no-unordered-iter` apply (deterministic crate).
    pub deterministic: bool,
    /// `no-threads-outside-par` applies (library code outside `crates/par`).
    pub threads_banned: bool,
    /// `no-btreemap-hot-path` applies (a per-event hot-path file).
    pub hot_path: bool,
}

impl FileScope {
    /// Scope with every rule family enabled (used by fixture tests).
    pub fn full() -> Self {
        FileScope {
            lib_code: true,
            deterministic: true,
            threads_banned: true,
            hot_path: true,
        }
    }
}

/// Crates whose runtime must stay deterministic: sim time only, ordered
/// collections only.
const DETERMINISTIC_CRATES: [&str; 4] = [
    "crates/des/",
    "crates/gpu/",
    "crates/core/",
    "crates/cluster/",
];

/// Files on the per-event hot path, where entity lookups must be arena
/// indexing rather than ordered-tree walks (`no-btreemap-hot-path`).
const HOT_PATH_FILES: [&str; 6] = [
    "crates/core/src/platform/engine.rs",
    "crates/core/src/manager/backend.rs",
    "crates/core/src/scheduler/guillotine.rs",
    "crates/core/src/scheduler/arena.rs",
    "crates/core/src/scheduler/node_select.rs",
    "crates/cluster/src/gateway.rs",
];

/// Classifies a workspace-relative path. `None` means the file is out of
/// scope entirely (test, bench or example code).
pub fn classify(rel_path: &str) -> Option<FileScope> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let mut in_bin = false;
    for seg in rel_path.split('/') {
        match seg {
            "tests" | "benches" | "examples" | "fixtures" => return None,
            "bin" | "main.rs" => in_bin = true,
            _ => {}
        }
    }
    let deterministic = DETERMINISTIC_CRATES
        .iter()
        .any(|prefix| rel_path.starts_with(prefix));
    let lib_code = !in_bin;
    Some(FileScope {
        lib_code,
        deterministic,
        threads_banned: lib_code && !rel_path.starts_with("crates/par/"),
        hot_path: HOT_PATH_FILES.contains(&rel_path),
    })
}

// ---------------------------------------------------------------------------
// Source cleaning: strip comments, strings and char literals so the rule
// pass sees only code tokens, while collecting `fastg-lint: allow(...)`
// escapes per line.
// ---------------------------------------------------------------------------

/// Cleaned source: `code` has the same byte length and line structure as the
/// input, with comments, string bodies and char literals blanked out.
pub struct Cleaned {
    /// Code-only text (non-code bytes replaced by spaces).
    pub code: Vec<u8>,
    /// Per 1-based line: rules allowed by a `// fastg-lint: allow(...)`
    /// comment on that line.
    pub allows: BTreeMap<usize, Vec<String>>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Strips comments/strings/chars, records allow escapes.
pub fn clean(source: &str) -> Cleaned {
    let src = source.as_bytes();
    let mut code = src.to_vec();
    let mut allows: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Blanks src[from..to] in `code`, keeping newlines.
    let blank = |code: &mut Vec<u8>, from: usize, to: usize| {
        for b in code.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < src.len() {
        let b = src[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < src.len() && src[i + 1] == b'/' => {
                let start = i;
                while i < src.len() && src[i] != b'\n' {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&src[start..i]).into_owned();
                record_allows(&text, line, &mut allows);
                // A comment alone on its line escapes the *next* line, so
                // multi-line statements can carry a lead-in allow.
                let standalone = src[..start]
                    .iter()
                    .rev()
                    .take_while(|&&b| b != b'\n')
                    .all(|b| b.is_ascii_whitespace());
                if standalone {
                    record_allows(&text, line + 1, &mut allows);
                }
                blank(&mut code, start, i);
            }
            b'/' if i + 1 < src.len() && src[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < src.len() && depth > 0 {
                    if src[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if src[i] == b'/' && i + 1 < src.len() && src[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if src[i] == b'*' && i + 1 < src.len() && src[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut code, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < src.len() {
                    match src[i] {
                        // An escape may hide a newline (`\` line
                        // continuation); keep the line count honest.
                        b'\\' => {
                            if src.get(i + 1) == Some(&b'\n') {
                                line += 1;
                            }
                            i += 2;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                // Keep the quotes so `""` stays a token boundary.
                blank(&mut code, start + 1, i.saturating_sub(1));
            }
            b'r' | b'b' if starts_raw_string(src, i) => {
                let prev_ident = i > 0 && is_ident(src[i - 1]);
                if prev_ident {
                    i += 1;
                    continue;
                }
                let start = i;
                // Skip the `r`/`br`/`rb` prefix.
                while i < src.len() && (src[i] == b'r' || src[i] == b'b') {
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < src.len() && src[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                loop {
                    if i >= src.len() {
                        break;
                    }
                    if src[i] == b'\n' {
                        line += 1;
                        i += 1;
                        continue;
                    }
                    if src[i] == b'"' {
                        let mut closing = 0usize;
                        while i + 1 + closing < src.len() && src[i + 1 + closing] == b'#' {
                            closing += 1;
                        }
                        if closing >= hashes {
                            i += 1 + hashes;
                            break;
                        }
                    }
                    i += 1;
                }
                blank(&mut code, start, i);
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                let next = src.get(i + 1).copied().unwrap_or(b' ');
                let after = src.get(i + 2).copied().unwrap_or(b' ');
                if next == b'\\' {
                    let start = i;
                    i += 2; // quote + backslash
                    while i < src.len() && src[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    blank(&mut code, start, i.min(src.len()));
                } else if is_ident(next) && after != b'\'' {
                    i += 1; // lifetime: skip the quote only
                } else {
                    let start = i;
                    i += 2; // quote + char
                    if i < src.len() && src[i] == b'\'' {
                        i += 1;
                    }
                    blank(&mut code, start, i.min(src.len()));
                }
            }
            _ => i += 1,
        }
    }
    Cleaned { code, allows }
}

fn starts_raw_string(src: &[u8], i: usize) -> bool {
    // `r"`, `r#`, `br"`, `br#`, `rb"` (the latter is not legal Rust but
    // harmless to accept).
    let mut j = i;
    while j < src.len() && (src[j] == b'r' || src[j] == b'b') && j - i < 2 {
        j += 1;
    }
    if j == i || !src[i..j].contains(&b'r') {
        return false;
    }
    while j < src.len() && src[j] == b'#' {
        j += 1;
    }
    src.get(j) == Some(&b'"')
}

fn record_allows(comment: &str, line: usize, allows: &mut BTreeMap<usize, Vec<String>>) {
    let Some(pos) = comment.find("fastg-lint:") else {
        return;
    };
    let rest = &comment[pos + "fastg-lint:".len()..];
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split(')').next()) else {
        return;
    };
    let entry = allows.entry(line).or_default();
    for rule in inner.split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            entry.push(rule.to_string());
        }
    }
}

// ---------------------------------------------------------------------------
// cfg(test) / cfg(debug_assertions) span exclusion
// ---------------------------------------------------------------------------

/// Blanks every item gated by `#[cfg(test)]` or `#[cfg(debug_assertions)]`
/// (including `any(...)` combinations of the two) from the cleaned code.
fn blank_cfg_spans(code: &mut [u8]) {
    let mut i = 0usize;
    while i < code.len() {
        let Some(off) = find_from(code, i, b"#[cfg(") else {
            break;
        };
        let attr_start = off;
        let args_start = off + b"#[cfg(".len();
        let Some(args_end) = matching(code, args_start - 1, b'(', b')') else {
            break;
        };
        let args = String::from_utf8_lossy(&code[args_start..args_end]).into_owned();
        let gated = cfg_is_test_like(&args);
        let Some(attr_end) = matching(code, attr_start + 1, b'[', b']') else {
            break;
        };
        if !gated {
            i = attr_end + 1;
            continue;
        }
        // Skip trailing attributes and whitespace, then the gated item:
        // either `;`-terminated or a `{ ... }` body.
        let mut j = attr_end + 1;
        loop {
            while j < code.len() && code[j].is_ascii_whitespace() {
                j += 1;
            }
            if j + 1 < code.len() && code[j] == b'#' && code[j + 1] == b'[' {
                match matching(code, j + 1, b'[', b']') {
                    Some(e) => j = e + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        let mut end = j;
        while end < code.len() {
            match code[end] {
                b';' => {
                    end += 1;
                    break;
                }
                b'{' => {
                    end = matching(code, end, b'{', b'}').map_or(code.len(), |e| e + 1);
                    break;
                }
                _ => end += 1,
            }
        }
        for b in code.iter_mut().take(end).skip(attr_start) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        i = end;
    }
}

/// Whether a `cfg(...)` argument list gates test-or-debug-only code.
fn cfg_is_test_like(args: &str) -> bool {
    let t = args.trim();
    if t == "test" || t == "debug_assertions" {
        return true;
    }
    if let Some(inner) = t.strip_prefix("any(").and_then(|r| r.strip_suffix(")")) {
        return inner
            .split(',')
            .all(|p| matches!(p.trim(), "test" | "debug_assertions"));
    }
    false
}

fn find_from(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= hay.len() || needle.is_empty() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Byte offset of the bracket matching `hay[open]`.
fn matching(hay: &[u8], open: usize, open_b: u8, close_b: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in hay.iter().enumerate().skip(open) {
        if b == open_b {
            depth += 1;
        } else if b == close_b {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule pass
// ---------------------------------------------------------------------------

struct LineMap {
    /// Byte offset of the start of each line.
    starts: Vec<usize>,
}

impl LineMap {
    fn new(code: &[u8]) -> Self {
        let mut starts = vec![0usize];
        for (i, &b) in code.iter().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineMap { starts }
    }

    /// (1-based line, 1-based col) of a byte offset.
    fn pos(&self, off: usize) -> (usize, usize) {
        let idx = match self.starts.binary_search(&off) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        (idx + 1, off - self.starts[idx] + 1)
    }
}

const PANIC_MACROS: [&str; 7] = [
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Scans one file's source, returning every diagnostic (allow escapes
/// already applied, baseline not).
pub fn scan_file(rel_path: &str, source: &str, scope: FileScope) -> Vec<Diagnostic> {
    let mut cleaned = clean(source);
    blank_cfg_spans(&mut cleaned.code);
    let code = &cleaned.code;
    let map = LineMap::new(code);
    let mut out = Vec::new();

    let mut push = |rule: &'static str, off: usize, message: String| {
        let (line, col) = map.pos(off);
        let allowed = cleaned
            .allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule));
        if !allowed {
            out.push(Diagnostic {
                rule,
                file: rel_path.to_string(),
                line,
                col,
                message,
            });
        }
    };

    if scope.lib_code {
        scan_no_panic(code, &mut push);
    }
    if scope.deterministic {
        scan_words(code, &["Instant", "SystemTime"], |off, word| {
            push(
                NO_WALLCLOCK,
                off,
                format!("`{word}` is wall-clock time; deterministic crates must use `SimTime`"),
            );
        });
        scan_words(code, &["HashMap", "HashSet"], |off, word| {
            push(
                NO_UNORDERED_ITER,
                off,
                format!(
                    "`{word}` has randomized iteration order; use `BTree{}` in deterministic crates",
                    &word[4..]
                ),
            );
        });
    }
    if scope.threads_banned {
        scan_words(code, &THREAD_WORDS, |off, word| {
            push(
                NO_THREADS,
                off,
                format!(
                    "`{word}` is a raw threading primitive; parallelism outside `crates/par` \
                     must go through `fastg_par::par_map` to stay deterministic"
                ),
            );
        });
    }
    if scope.lib_code && !scope.deterministic {
        // Inside the deterministic crates `no-unordered-iter` already
        // denies these (with a stronger rationale); this rule extends the
        // ban to the rest of the workspace's library code so helper
        // crates can migrate into the core without smuggling in a
        // randomized iteration order.
        scan_words(code, &["HashMap", "HashSet"], |off, word| {
            push(
                NO_DEFAULT_HASHER,
                off,
                format!(
                    "`{word}` uses the randomly-seeded default hasher; iteration order is a \
                     latent determinism race — use `BTree{}`",
                    &word[4..]
                ),
            );
        });
    }
    if scope.deterministic {
        scan_tiebreak_drain(code, &mut push);
        scan_event_match(code, &mut push);
    }
    if scope.hot_path {
        scan_words(code, &["BTreeMap", "BTreeSet"], |off, word| {
            push(
                NO_BTREEMAP_HOT_PATH,
                off,
                format!(
                    "`{word}` on a per-event hot path is a pointer-chasing tree walk; keep \
                     entity state in `IdArena`/dense slabs (cold report assembly may keep it \
                     behind a per-line allow escape)"
                ),
            );
        });
    }
    if scope.lib_code {
        scan_snapshot_fields(code, &mut push);
    }
    scan_float_eq(code, &mut push);
    scan_lossy_cast(code, &mut push);
    out
}

/// Whether a function name marks a snapshot encode/decode body: `snap`,
/// `unsnap`, or any `snap_*`/`unsnap_*` variant (`snap_state`,
/// `unsnap_with`, `snap_cursor`, ...).
fn is_snapshot_fn(name: &[u8]) -> bool {
    name == b"snap"
        || name == b"unsnap"
        || name.starts_with(b"snap_")
        || name.starts_with(b"unsnap_")
}

/// `exhaustive-snapshot-fields`: a `..` rest pattern inside a snapshot
/// encode/decode body. The codec's correctness rests on every struct
/// being destructured exhaustively — `let Self { a, b } = self;` — so a
/// newly added field fails to compile until it is wired onto the wire.
/// A rest pattern defeats exactly that: the new field silently skips
/// serialization and the checkpoint restores to a different simulation.
///
/// Only genuine rest patterns are flagged (`..` preceded by `{`, `(` or
/// `,` and followed by `}` or `)`); ranges (`0..n`), slice indexing
/// (`&b[..4]`) and `..=` stay legal.
fn scan_snapshot_fields(code: &[u8], push: &mut impl FnMut(&'static str, usize, String)) {
    let needle = b"fn ";
    let mut i = 0usize;
    while let Some(off) = find_from(code, i, needle) {
        i = off + needle.len();
        if off > 0 && is_ident(code[off - 1]) {
            continue;
        }
        let mut j = i;
        while code.get(j).copied().is_some_and(is_ident) {
            j += 1;
        }
        if !is_snapshot_fn(&code[i..j]) {
            continue;
        }
        // Find the body's opening brace at paren depth 0 (a `;` first
        // means a bodyless trait method declaration).
        let mut k = j;
        let mut pdepth = 0usize;
        let mut open = None;
        while k < code.len() {
            match code[k] {
                b'(' => pdepth += 1,
                b')' => pdepth = pdepth.saturating_sub(1),
                b'{' if pdepth == 0 => {
                    open = Some(k);
                    break;
                }
                b';' if pdepth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            continue;
        };
        let Some(close) = matching(code, open, b'{', b'}') else {
            continue;
        };
        let mut u = open;
        while let Some(dots) = find_from(code, u, b"..") {
            if dots >= close {
                break;
            }
            u = dots + 2;
            // `..=` and `...` are ranges, never rest patterns.
            if matches!(code.get(dots + 2), Some(&b'=') | Some(&b'.')) {
                continue;
            }
            let prev = code[..dots]
                .iter()
                .rev()
                .find(|b| !b.is_ascii_whitespace())
                .copied()
                .unwrap_or(b' ');
            if !matches!(prev, b',' | b'{' | b'(') {
                continue;
            }
            let mut v = dots + 2;
            while code.get(v).copied().is_some_and(|b| b.is_ascii_whitespace()) {
                v += 1;
            }
            if matches!(code.get(v), Some(&b'}') | Some(&b')')) {
                push(
                    EXHAUSTIVE_SNAPSHOT_FIELDS,
                    dots,
                    "`..` rest pattern in a snapshot encode/decode body; destructure every \
                     field explicitly so a new state field cannot silently skip serialization"
                        .to_string(),
                );
            }
        }
        i = close;
    }
}

/// `no-tiebreak-sensitive-drain`: a comparator that orders events by
/// `time` alone. Two findings families:
///
/// * `.time.cmp(..)` not chained into `.then`/`.then_with` — an `Ord`
///   implementation (or sort comparator) whose result for equal-time
///   entries is unspecified, i.e. whatever the container's internal
///   order happens to be;
/// * `sort_by_key`/`min_by_key`/`max_by_key` with a closure returning a
///   bare `<expr>.time` — equal-time elements keep slice order, so the
///   drain result silently depends on how the slice was built.
///
/// Both are latent tie-break races: append a discriminating key
/// (sequence number, id) to make equal-time order explicit.
fn scan_tiebreak_drain(code: &[u8], push: &mut impl FnMut(&'static str, usize, String)) {
    let needle = b".time.cmp(";
    let mut i = 0usize;
    while let Some(off) = find_from(code, i, needle) {
        i = off + needle.len();
        let open = off + needle.len() - 1;
        let Some(close) = matching(code, open, b'(', b')') else {
            continue;
        };
        let mut j = close + 1;
        while code.get(j).copied().is_some_and(|b| b.is_ascii_whitespace()) {
            j += 1;
        }
        if find_from(code, j, b".then") != Some(j) {
            push(
                NO_TIEBREAK_DRAIN,
                off + 1,
                "comparator orders by `time` alone; equal-time order is a latent race — \
                 chain `.then_with(..)` on a discriminating key (seq, id)"
                    .to_string(),
            );
        }
    }
    for name in ["sort_by_key", "min_by_key", "max_by_key"] {
        let needle = name.as_bytes();
        let mut i = 0usize;
        while let Some(off) = find_from(code, i, needle) {
            i = off + needle.len();
            if off > 0 && is_ident(code[off - 1]) {
                continue;
            }
            let mut j = i;
            while code.get(j).copied().is_some_and(|b| b.is_ascii_whitespace()) {
                j += 1;
            }
            if code.get(j) != Some(&b'(') {
                continue;
            }
            let Some(close) = matching(code, j, b'(', b')') else {
                continue;
            };
            let body: Vec<u8> = code[j + 1..close]
                .iter()
                .copied()
                .filter(|b| !b.is_ascii_whitespace())
                .collect();
            if body.contains(&b'|') && body.ends_with(b".time") {
                push(
                    NO_TIEBREAK_DRAIN,
                    off,
                    format!(
                        "`{name}` keyed by `time` alone leaves equal-time order to the \
                         container; key by a tuple like `(e.time, e.seq)` instead"
                    ),
                );
            }
        }
    }
}

/// `exhaustive-event-match`: a `match` whose body has `Event::` arms must
/// not have a `_ =>` arm. A wildcard silently absorbs every future event
/// variant — exactly how a new event kind bypasses the class ranking,
/// sanitizer hooks or trace coverage without the compiler noticing.
fn scan_event_match(code: &[u8], push: &mut impl FnMut(&'static str, usize, String)) {
    let needle = b"match ";
    let mut i = 0usize;
    while let Some(off) = find_from(code, i, needle) {
        i = off + needle.len();
        if off > 0 && is_ident(code[off - 1]) {
            continue;
        }
        let Some(open) = find_from(code, off, b"{") else {
            continue;
        };
        let Some(close) = matching(code, open, b'{', b'}') else {
            continue;
        };
        let body = &code[open..=close];
        if !has_event_arm(body) {
            continue;
        }
        let mut k = 0usize;
        while let Some(u) = find_from(body, k, b"_") {
            k = u + 1;
            if u > 0 && is_ident(body[u - 1]) {
                continue;
            }
            if body.get(u + 1).copied().is_some_and(is_ident) {
                continue;
            }
            // A wildcard *arm* starts at an arm boundary (`{`, `,` or a
            // block arm's `}`) — `Some(_)` / `|_|` / `(_, x)` do not.
            let prev = body[..u]
                .iter()
                .rev()
                .find(|b| !b.is_ascii_whitespace())
                .copied()
                .unwrap_or(b' ');
            if !matches!(prev, b'{' | b',' | b'}') {
                continue;
            }
            let mut v = u + 1;
            while body.get(v).copied().is_some_and(|b| b.is_ascii_whitespace()) {
                v += 1;
            }
            if find_from(body, v, b"=>") == Some(v) {
                push(
                    EXHAUSTIVE_EVENT_MATCH,
                    open + u,
                    "wildcard arm in a match over `Event`; new event variants would be \
                     silently absorbed — list every variant explicitly"
                        .to_string(),
                );
            }
        }
        i = close;
    }
}

/// Whether a match body contains an `Event::` path at an identifier
/// boundary (so `FaultEvent::` does not count).
fn has_event_arm(body: &[u8]) -> bool {
    let needle = b"Event::";
    let mut i = 0usize;
    while let Some(off) = find_from(body, i, needle) {
        i = off + needle.len();
        if off == 0 || !is_ident(body[off - 1]) {
            return true;
        }
    }
    false
}

/// Tokens denied by `no-threads-outside-par`. `Arc` is deliberately
/// absent: shared immutable data is deterministic.
const THREAD_WORDS: [&str; 11] = [
    "thread",
    "Mutex",
    "RwLock",
    "Condvar",
    "JoinHandle",
    "mpsc",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU64",
    "AtomicU32",
];

fn scan_no_panic(code: &[u8], push: &mut impl FnMut(&'static str, usize, String)) {
    // Method calls: `.unwrap()` and `.expect(`.
    for (needle, hint) in [
        (
            &b".unwrap"[..],
            "return a typed error (`?`, `ok_or`) instead of unwrapping",
        ),
        (
            &b".expect"[..],
            "return a typed error (`?`, `ok_or`) instead of expecting",
        ),
    ] {
        let mut i = 0usize;
        while let Some(off) = find_from(code, i, needle) {
            i = off + needle.len();
            // Reject `.unwrap_or`, `.expect_err`, identifiers.
            if code.get(i).copied().is_some_and(is_ident) {
                continue;
            }
            // Must be a call.
            let mut j = i;
            while code.get(j).copied().is_some_and(|b| b.is_ascii_whitespace()) {
                j += 1;
            }
            if code.get(j) != Some(&b'(') {
                continue;
            }
            let name = String::from_utf8_lossy(&code[off + 1..i]).into_owned();
            push(
                NO_PANIC,
                off + 1,
                format!("`{name}()` can panic in library code; {hint}"),
            );
        }
    }
    // Panicking macros (debug_assert* excluded by the boundary check).
    for mac in PANIC_MACROS {
        let needle = mac.as_bytes();
        let mut i = 0usize;
        while let Some(off) = find_from(code, i, needle) {
            i = off + needle.len();
            if off > 0 && is_ident(code[off - 1]) {
                continue; // debug_assert!, my_panic!, ...
            }
            push(
                NO_PANIC,
                off,
                format!(
                    "`{mac}` panics in library code; return a typed error or use `debug_assert!`"
                ),
            );
        }
    }
}

fn scan_words(code: &[u8], words: &[&'static str], mut hit: impl FnMut(usize, &'static str)) {
    for word in words {
        let needle = word.as_bytes();
        let mut i = 0usize;
        while let Some(off) = find_from(code, i, needle) {
            i = off + needle.len();
            let before_ok = off == 0 || !is_ident(code[off - 1]);
            let after_ok = !code.get(i).copied().is_some_and(is_ident);
            if before_ok && after_ok {
                hit(off, word);
            }
        }
    }
}

/// A backward token ending at `end` (exclusive): the longest run of
/// identifier/number bytes (plus `.` so `1.0` is one token).
fn token_before(code: &[u8], end: usize) -> &[u8] {
    let mut j = end;
    while j > 0 && code[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let stop = j;
    while j > 0 && (is_ident(code[j - 1]) || code[j - 1] == b'.') {
        j -= 1;
    }
    &code[j..stop]
}

fn token_after(code: &[u8], start: usize) -> &[u8] {
    let mut j = start;
    while j < code.len() && code[j].is_ascii_whitespace() {
        j += 1;
    }
    // Skip a unary sign.
    if code.get(j) == Some(&b'-') {
        j += 1;
    }
    let begin = j;
    while j < code.len() && (is_ident(code[j]) || code[j] == b'.') {
        j += 1;
    }
    &code[begin..j]
}

/// `1.0`, `0.5`, `12.`, `1.5e3` — a numeric token containing a dot.
fn is_float_literal(tok: &[u8]) -> bool {
    if tok.is_empty() || !tok[0].is_ascii_digit() || !tok.contains(&b'.') {
        return false;
    }
    tok.iter()
        .all(|&b| b.is_ascii_digit() || matches!(b, b'.' | b'_' | b'e' | b'E' | b'f'))
}

fn scan_float_eq(code: &[u8], push: &mut impl FnMut(&'static str, usize, String)) {
    let mut i = 0usize;
    while i + 1 < code.len() {
        let pair = &code[i..i + 2];
        let is_eq = pair == b"==";
        let is_ne = pair == b"!=";
        if !is_eq && !is_ne {
            i += 1;
            continue;
        }
        let prev = if i > 0 { code[i - 1] } else { b' ' };
        let next = code.get(i + 2).copied().unwrap_or(b' ');
        // Exclude `<=`, `>=`, `===`-ish, `!==`, pattern `=>`, `&&=`…
        if is_eq && (matches!(prev, b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^') || next == b'=') {
            i += 2;
            continue;
        }
        if is_ne && next == b'=' {
            i += 2;
            continue;
        }
        let lhs = token_before(code, i);
        let rhs = token_after(code, i + 2);
        let lhs_cast = ends_with_float_cast(code, i);
        if is_float_literal(lhs) || is_float_literal(rhs) || lhs_cast {
            push(
                NO_FLOAT_EQ,
                i,
                "exact float comparison; use an epsilon test like `(a - b).abs() < EPS`"
                    .to_string(),
            );
        }
        i += 2;
    }
}

/// Whether the text before offset `end` ends with `as f64` / `as f32`.
fn ends_with_float_cast(code: &[u8], end: usize) -> bool {
    let tok = token_before(code, end);
    if tok != b"f64" && tok != b"f32" {
        return false;
    }
    let mut j = end;
    while j > 0 && code[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let tok2 = token_before(code, j - tok.len());
    tok2 == b"as"
}

fn scan_lossy_cast(code: &[u8], push: &mut impl FnMut(&'static str, usize, String)) {
    let needle = b"as";
    let mut i = 0usize;
    while let Some(off) = find_from(code, i, needle) {
        i = off + 2;
        let before_ok = off == 0 || !is_ident(code[off - 1]);
        let after_ws = code.get(i).copied().is_some_and(|b| b.is_ascii_whitespace());
        if !before_ok || !after_ws {
            continue;
        }
        let target = token_after(code, i);
        if INT_TYPES.iter().any(|t| t.as_bytes() == target) {
            let t = String::from_utf8_lossy(target).into_owned();
            push(
                NO_LOSSY_CAST,
                off,
                format!(
                    "`as {t}` can silently truncate; use `{t}::from`/`{t}::try_from` or widen the accumulator"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline: per-rule-per-file allowlisted violation counts
// ---------------------------------------------------------------------------

/// The checked-in ratchet: existing violation counts per rule per file.
/// `--check` fails only when a (rule, file) pair exceeds its entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// rule -> file -> allowlisted count.
    pub entries: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// Builds a baseline that exactly allowlists `diags`.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Self {
        let mut entries: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for d in diags {
            *entries
                .entry(d.rule.to_string())
                .or_default()
                .entry(d.file.clone())
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Total allowlisted violations.
    pub fn total(&self) -> u64 {
        self.entries.values().flat_map(|m| m.values()).sum()
    }

    /// Allowlisted count for a (rule, file) pair.
    pub fn allowed(&self, rule: &str, file: &str) -> u64 {
        self.entries
            .get(rule)
            .and_then(|m| m.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Renders the canonical JSON form (sorted keys, pretty-printed).
    pub fn render(&self) -> String {
        use fastg_json::{ObjectBuilder, Value};
        let mut rules = ObjectBuilder::new();
        for (rule, files) in &self.entries {
            let mut per_file = ObjectBuilder::new();
            for (file, &count) in files {
                per_file = per_file.field(file, count);
            }
            rules = rules.field(rule, per_file.build());
        }
        let doc = ObjectBuilder::new()
            .field("version", 1u64)
            .field("rules", rules.build())
            .build();
        let mut s = Value::to_string_pretty(&doc);
        s.push('\n');
        s
    }

    /// Parses the JSON form produced by [`Self::render`].
    pub fn parse(text: &str) -> Result<Self, String> {
        use fastg_json::Value;
        let v = Value::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let rules = v
            .get("rules")
            .and_then(|r| r.as_object())
            .ok_or("baseline has no `rules` object")?;
        let mut entries: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for (rule, files) in rules {
            let files = files
                .as_object()
                .ok_or_else(|| format!("rule `{rule}` is not an object"))?;
            let mut per_file = BTreeMap::new();
            for (file, count) in files {
                let count = count
                    .as_u64()
                    .ok_or_else(|| format!("count for `{rule}`/`{file}` is not an integer"))?;
                per_file.insert(file.clone(), count);
            }
            entries.insert(rule.clone(), per_file);
        }
        Ok(Baseline { entries })
    }
}

/// Result of checking a diagnostic set against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// (rule, file, found, allowed) for every pair over its baseline.
    pub regressions: Vec<(String, String, u64, u64)>,
    /// (rule, file, found, allowed) for stale entries (fewer violations
    /// than allowlisted — the baseline should be re-tightened).
    pub stale: Vec<(String, String, u64, u64)>,
}

impl CheckReport {
    /// Whether the check passed (no pair exceeds its baseline).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares found diagnostics against the baseline ratchet.
pub fn check(diags: &[Diagnostic], baseline: &Baseline) -> CheckReport {
    let found = Baseline::from_diagnostics(diags);
    let mut report = CheckReport::default();
    for (rule, files) in &found.entries {
        for (file, &count) in files {
            let allowed = baseline.allowed(rule, file);
            if count > allowed {
                report
                    .regressions
                    .push((rule.clone(), file.clone(), count, allowed));
            }
        }
    }
    for (rule, files) in &baseline.entries {
        for (file, &allowed) in files {
            let have = found.allowed(rule, file);
            if have < allowed {
                report.stale.push((rule.clone(), file.clone(), have, allowed));
            }
        }
    }
    report
}

/// Renders diagnostics as a machine-readable JSON array.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    use fastg_json::{ObjectBuilder, Value};
    let items: Vec<Value> = diags
        .iter()
        .map(|d| {
            ObjectBuilder::new()
                .field("rule", d.rule)
                .field("file", d.file.as_str())
                .field("line", u64::try_from(d.line).unwrap_or(u64::MAX))
                .field("col", u64::try_from(d.col).unwrap_or(u64::MAX))
                .field("message", d.message.as_str())
                .build()
        })
        .collect();
    let mut s = Value::from(items).to_string_pretty();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Diagnostic> {
        scan_file("lib.rs", src, FileScope::full())
    }

    #[test]
    fn unwrap_in_lib_flagged() {
        let d = scan("fn f() { x.unwrap(); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, NO_PANIC);
        assert_eq!((d[0].line, d[0].col), (1, 12));
    }

    #[test]
    fn unwrap_or_not_flagged() {
        assert!(scan("fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); }").is_empty());
        assert!(scan("fn f() { x.expect_err(\"e\"); }").is_empty());
    }

    #[test]
    fn debug_assert_not_flagged_but_assert_is() {
        assert!(scan("fn f() { debug_assert!(true); debug_assert_eq!(1, 1); }").is_empty());
        let d = scan("fn f() { assert!(true); }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn strings_and_comments_are_skipped() {
        assert!(scan("// x.unwrap()\nfn f() { let s = \"panic!\"; }").is_empty());
        assert!(scan("/* panic! */ fn f() {}").is_empty());
        assert!(scan("/// x.unwrap()\nfn f() {}").is_empty());
    }

    #[test]
    fn cfg_test_block_is_skipped() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { x.unwrap(); } }\n";
        assert!(scan(src).is_empty());
        let src = "#[cfg(debug_assertions)]\nfn check() { assert!(true); }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn allow_escape_suppresses_one_line() {
        let src = "fn f() { x.unwrap(); // fastg-lint: allow(no-panic-in-lib)\n y.unwrap(); }";
        let d = scan(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn standalone_allow_escapes_next_line() {
        let src = "fn f() {\n    // fastg-lint: allow(no-panic-in-lib)\n    x.unwrap();\n    y.unwrap();\n}\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "only the un-escaped unwrap should remain");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn trailing_allow_does_not_leak_to_next_line() {
        // A comment that follows code on its line escapes only that line.
        let src = "fn f() { let a = 1; // fastg-lint: allow(no-panic-in-lib)\n    x.unwrap();\n}\n";
        let d = scan(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn wallclock_and_hash_flagged_in_deterministic_scope_only() {
        let src = "use std::time::Instant;\nuse std::collections::HashMap;\n";
        assert_eq!(scan(src).len(), 2);
        // Outside the deterministic crates the unordered-iter and
        // wallclock rules stand down, but the default-hasher rule picks
        // the HashMap up instead.
        let lib_only = FileScope { lib_code: true, deterministic: false, threads_banned: false, hot_path: false };
        let d = scan_file("lib.rs", src, lib_only);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, NO_DEFAULT_HASHER);
    }

    #[test]
    fn string_line_continuation_keeps_line_count() {
        // A `\` line continuation inside a string hides a newline from a
        // naive scanner; allow escapes after it must still land on the
        // right line.
        let src = "fn f() {\n    let s = \"a \\\n       b\";\n    x.unwrap(); // fastg-lint: allow(no-panic-in-lib)\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn float_eq_flagged() {
        let d = scan("fn f(x: f64) -> bool { x == 1.0 }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, NO_FLOAT_EQ);
        assert_eq!(scan("fn f(x: f64) -> bool { 0.5 != x }").len(), 1);
        assert!(scan("fn f(x: u64) -> bool { x == 1 }").is_empty());
        assert!(scan("fn f(x: f64) -> bool { x <= 1.0 }").is_empty());
    }

    #[test]
    fn float_cast_eq_flagged() {
        let d = scan("fn f(x: u32, y: f64) -> bool { x as f64 == y }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, NO_FLOAT_EQ);
    }

    #[test]
    fn lossy_cast_flagged() {
        let d = scan("fn f(x: u64) -> u32 { x as u32 }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, NO_LOSSY_CAST);
        assert!(scan("fn f(x: u32) -> f64 { x as f64 }").is_empty());
        assert!(scan("fn f() { let basket = 1; }").is_empty()); // `as` inside ident
    }

    #[test]
    fn bin_scope_skips_no_panic_only() {
        let scope = FileScope { lib_code: false, deterministic: true, threads_banned: false, hot_path: false };
        let src = "fn main() { x.unwrap(); let m: HashMap<u8, u8> = HashMap::new(); }";
        let d = scan_file("main.rs", src, scope);
        assert!(d.iter().all(|d| d.rule == NO_UNORDERED_ITER));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn thread_primitives_flagged_outside_par() {
        let src = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }\n";
        let d = scan(src);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == NO_THREADS));
        // Arc and plural identifiers stay clean; scope off disables it.
        assert!(scan("use std::sync::Arc;\nfn f(threads: usize) {}\n").is_empty());
        let par_scope = FileScope { lib_code: true, deterministic: false, threads_banned: false, hot_path: false };
        assert!(scan_file("crates/par/src/lib.rs", src, par_scope).is_empty());
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/gpu/src/device.rs"), Some(FileScope { lib_code: true, deterministic: true, threads_banned: true, hot_path: false }));
        assert_eq!(classify("crates/workload/src/rate.rs"), Some(FileScope { lib_code: true, deterministic: false, threads_banned: true, hot_path: false }));
        assert_eq!(classify("crates/par/src/lib.rs"), Some(FileScope { lib_code: true, deterministic: false, threads_banned: false, hot_path: false }));
        assert_eq!(classify("crates/core/src/bin/fastgshare.rs"), Some(FileScope { lib_code: false, deterministic: true, threads_banned: false, hot_path: false }));
        assert_eq!(classify("crates/core/src/scheduler/guillotine.rs"), Some(FileScope { lib_code: true, deterministic: true, threads_banned: true, hot_path: true }));
        assert_eq!(classify("crates/core/src/scheduler/arena.rs"), Some(FileScope { lib_code: true, deterministic: true, threads_banned: true, hot_path: true }));
        assert_eq!(classify("crates/core/src/scheduler/rects.rs"), Some(FileScope { lib_code: true, deterministic: true, threads_banned: true, hot_path: false }));
        assert_eq!(classify("crates/lint/src/main.rs"), Some(FileScope { lib_code: false, deterministic: false, threads_banned: false, hot_path: false }));
        assert_eq!(classify("crates/gpu/tests/scenarios.rs"), None);
        assert_eq!(classify("tests/end_to_end.rs"), None);
        assert_eq!(classify("examples/quickstart.rs"), None);
        assert_eq!(classify("crates/bench/benches/ablation_manager.rs"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn baseline_round_trip_and_check() {
        let diags = scan("fn f() { x.unwrap(); y.unwrap(); }");
        assert_eq!(diags.len(), 2);
        let base = Baseline::from_diagnostics(&diags);
        assert_eq!(base.total(), 2);
        let parsed = Baseline::parse(&base.render()).expect("round trip");
        assert_eq!(parsed, base);
        // Exactly-at-baseline passes; one more violation fails.
        assert!(check(&diags, &base).passed());
        let more = scan("fn f() { x.unwrap(); y.unwrap(); z.unwrap(); }");
        let report = check(&more, &base);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].2, 3);
        assert_eq!(report.regressions[0].3, 2);
        // Fewer violations than allowlisted is stale, not failing.
        let fewer = scan("fn f() { x.unwrap(); }");
        let report = check(&fewer, &base);
        assert!(report.passed());
        assert_eq!(report.stale.len(), 1);
    }

    #[test]
    fn snapshot_rest_pattern_flagged_in_snap_fns_only() {
        // A rest pattern inside `snap` hides fields from the wire.
        let d = scan("fn snap(&self, w: &mut W) { let Self { a, .. } = self; w.u64(*a); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, EXHAUSTIVE_SNAPSHOT_FIELDS);
        // `snap_state` / `unsnap_with` variants are covered too.
        assert_eq!(
            scan("fn unsnap_with(r: &mut R) { let Self { b, .. } = x; }").len(),
            1
        );
        // The same pattern outside a snapshot body stays legal.
        assert!(scan("fn summary(&self) -> u64 { let Self { a, .. } = self; *a }").is_empty());
        // Ranges, slices and `..=` inside snapshot bodies are not rest
        // patterns.
        assert!(scan(
            "fn snap(&self, w: &mut W) { for i in 0..3 { w.u64(i); } let s = &self.b[..2]; \
             if matches!(self.a, 0..=9) { w.u64(1); } }"
        )
        .is_empty());
        // Tuple rest patterns are rest patterns.
        assert_eq!(
            scan("fn unsnap(r: &mut R) { let Self(a, ..) = x; }").len(),
            1
        );
    }

    #[test]
    fn raw_strings_and_lifetimes_survive_cleaning() {
        let src = "fn f<'a>(s: &'a str) { let r = r#\"x.unwrap()\"#; let c = '\"'; }";
        assert!(scan(src).is_empty());
    }
}
