//! Offline drop-in subset of the `criterion` crate API used by this
//! workspace's `harness = false` benchmark binaries.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion the benches call:
//! `Criterion::default().configure_from_args().sample_size(n)`,
//! `bench_function(name, |b| b.iter(...))` and `final_summary()`.
//!
//! Measurement is deliberately simple: each benchmark closure runs
//! `sample_size` timed samples (after one warm-up), and the mean/min/max
//! wall-clock per iteration is printed to stdout. There are no plots, no
//! statistical regression analysis, and no saved baselines.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Runs one benchmark's iterations (subset of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, once per sample, recording wall-clock seconds.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts (and ignores) harness CLI arguments such as `--bench`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark. Zero is a caller
    /// bug (debug-asserted); release builds clamp to one sample.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        debug_assert!(n > 0, "sample_size must be positive");
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a named benchmark and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name}: no samples");
        } else {
            let n = b.samples.len() as f64;
            let mean = b.samples.iter().sum::<f64>() / n;
            let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "{name}: mean {} (min {}, max {}, {} samples)",
                fmt_secs(mean),
                fmt_secs(min),
                fmt_secs(max),
                b.samples.len()
            );
        }
        self
    }

    /// Prints the closing summary line (kept for API compatibility).
    pub fn final_summary(&mut self) {
        println!("benchmarks complete");
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut runs = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
