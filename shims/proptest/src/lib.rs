//! Offline drop-in subset of the `proptest` crate API used by this
//! workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest it uses: the [`Strategy`]
//! trait over primitive ranges / tuples / collections, `any::<T>()`,
//! `prop_map`, `prop_oneof!`, and the `proptest!` test macro with
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! * Inputs are drawn from a fixed seeded generator, so every run tests
//!   the same deterministic case set (no `PROPTEST_CASES` env, no
//!   persistence files — `*.proptest-regressions` files are ignored).
//! * There is no shrinking: a failing case reports the assertion as-is.
//! * `prop_assert!`/`prop_assert_eq!` expand to plain `assert!`s.

#![warn(missing_docs)]

/// Test-runner plumbing: the deterministic per-case RNG.
pub mod test_runner {
    /// Failure type for fallible property helpers
    /// (`Result<(), TestCaseError>` + `?` inside `proptest!` bodies).
    ///
    /// In this shim `prop_assert!` panics instead of returning `Err`, so
    /// the type mostly exists so helper signatures compile unchanged.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failed test case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG handed to strategies for one generated case.
    ///
    /// xoshiro256++ seeded per `(test, case)` via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            let mut x = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, n)`. `n = 0` is a caller bug
        /// (debug-asserted); release builds return 0 rather than panic.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            if n == 0 {
                return 0;
            }
            self.next_u64() % n
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: value generators for property tests.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test-case values (subset of `proptest::Strategy`).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    // An empty range is a caller bug (debug-asserted);
                    // release builds degrade to `start` rather than panic.
                    debug_assert!(self.start < self.end, "empty strategy range");
                    if self.start >= self.end {
                        return self.start;
                    }
                    // The i128 widening is exact for every instantiated
                    // type (all ≤ 64 bits; `i128::from` does not exist
                    // for usize/isize) and the final narrowing is
                    // in-range by construction.
                    // fastg-lint: allow(no-lossy-cast)
                    let span = (self.end as i128 - self.start as i128) as u64;
                    // fastg-lint: allow(no-lossy-cast)
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    debug_assert!(lo <= hi, "empty strategy range");
                    if lo >= hi {
                        return lo;
                    }
                    // Same exact-widening argument as in `Range` above.
                    // fastg-lint: allow(no-lossy-cast)
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    // fastg-lint: allow(no-lossy-cast)
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            // An empty (or NaN-bounded) range is a caller bug
            // (debug-asserted); release builds degrade to `start`.
            debug_assert!(self.start < self.end, "empty strategy range");
            if self.start < self.end {
                let v = self.start + rng.unit_f64() * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            } else {
                self.start
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }

    /// Uniform choice between boxed alternative strategies
    /// (what `prop_oneof!` builds).
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    /// Builds a [`OneOf`] from boxed arms; used by `prop_oneof!`.
    ///
    /// A zero-arm `OneOf` can never produce a value, so construction
    /// panics with a clear message — that failure mode *is* the API, as
    /// in the real crate.
    pub fn one_of<V>(arms: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
        // fastg-lint: allow(no-panic-in-lib)
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            // `below(len)` is `< len`, so the round trip through u64 is
            // exact for any real arm count.
            // fastg-lint: allow(no-lossy-cast)
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].new_value(rng)
        }
    }

    /// Types with a canonical "arbitrary" strategy (`any::<T>()`).
    pub trait ArbitraryValue: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub(crate) fn any_strategy<T: ArbitraryValue>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with a length drawn from `len`. An empty
    /// length range is a caller bug (debug-asserted); release builds
    /// degrade to always generating `len.start` elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        debug_assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            // `below(span)` is `< span ≤ len.end`, so the round trip
            // through u64 is exact for any real collection length.
            // fastg-lint: allow(no-lossy-cast)
            let span = self.len.end.saturating_sub(self.len.start) as u64;
            // fastg-lint: allow(no-lossy-cast)
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Canonical strategy for an arbitrary `T` (subset: primitives only).
pub fn any<T: strategy::ArbitraryValue>() -> strategy::Any<T> {
    strategy::any_strategy::<T>()
}

/// Per-test configuration (subset: only `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real crate's `prop` path alias (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the real macro's common form, with an optional
/// `#![proptest_config(...)]` header:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     fn my_property(x in 0u64..100, (a, b) in (0u8..4, 0u8..4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(__cfg.cases) {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                    // Run the body in a fallible closure so `?` on
                    // `Result<_, TestCaseError>` helpers compiles, as in
                    // real proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        // Panicking is how a property test reports failure
                        // to the test harness — this is the macro's API.
                        // fastg-lint: allow(no-panic-in-lib)
                        panic!("property failed: {e}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (no shrinking: plain panic).
/// Panicking on failure is the macro's API — it expands into test code.
#[macro_export]
macro_rules! prop_assert {
    // fastg-lint: allow(no-panic-in-lib)
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (no shrinking: plain panic).
/// Panicking on failure is the macro's API — it expands into test code.
#[macro_export]
macro_rules! prop_assert_eq {
    // fastg-lint: allow(no-panic-in-lib)
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test (no shrinking: plain panic).
/// Panicking on failure is the macro's API — it expands into test code.
#[macro_export]
macro_rules! prop_assert_ne {
    // fastg-lint: allow(no-panic-in-lib)
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$(::std::boxed::Box::new($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Op {
        Add(u8),
        Del(u8),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![any::<u8>().prop_map(Op::Add), (0u8..8).prop_map(Op::Del)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1u32..=4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec((0u8..2, 1u64..512), 1..120)) {
            prop_assert!(!v.is_empty() && v.len() < 120);
            for (a, b) in &v {
                prop_assert!(*a < 2);
                prop_assert!((1..512).contains(b));
            }
        }

        #[test]
        fn oneof_hits_all_arms(ops in prop::collection::vec(arb_op(), 40..41)) {
            prop_assert_eq!(ops.len(), 40);
        }

        #[test]
        fn tuple_destructuring((a, b) in (0u8..4, 10i32..20)) {
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = prop::collection::vec(0u64..1_000, 1..50);
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
