//! Offline drop-in subset of the `rand` crate (0.8 API surface) used by
//! this workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `rand` it actually uses:
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen_range` / `gen_bool` over primitive
//! integer and float ranges.
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets) seeded through SplitMix64, so streams are
//! deterministic per seed — which is all the deterministic simulation
//! requires. Distribution subtleties of the real crate (e.g. unbiased
//! integer sampling via rejection) are deliberately simplified.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for generating values (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// Out-of-range `p` is a caller bug (debug-asserted); release builds
    /// clamp to `[0, 1]` — with `NaN` treated as 0 — rather than panic.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps a random 64-bit word to a float in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce uniform samples of `T` given a word source.
pub trait SampleRange<T> {
    /// Draws one sample using `next` as the entropy source.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                // An empty range is a caller bug (debug-asserted); release
                // builds degrade to returning `start` rather than panic.
                debug_assert!(self.start < self.end, "empty range in gen_range");
                if self.start >= self.end {
                    return self.start;
                }
                // The i128 widening is exact for every instantiated type
                // (all ≤ 64 bits; `i128::from` does not exist for
                // usize/isize) and the final narrowing is in-range by
                // construction.
                // fastg-lint: allow(no-lossy-cast)
                let span = (self.end as i128 - self.start as i128) as u128;
                // fastg-lint: allow(no-lossy-cast)
                let off = (next() as u128) % span;
                // fastg-lint: allow(no-lossy-cast)
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty range in gen_range");
                if lo >= hi {
                    return lo;
                }
                // Same exact-widening argument as in `Range` above.
                // fastg-lint: allow(no-lossy-cast)
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // fastg-lint: allow(no-lossy-cast)
                let off = (next() as u128) % span;
                // fastg-lint: allow(no-lossy-cast)
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        // An empty (or NaN-bounded) range is a caller bug
        // (debug-asserted); release builds degrade to `start`.
        debug_assert!(self.start < self.end, "empty range in gen_range");
        if self.start < self.end {
            let v = self.start + unit_f64(next()) * (self.end - self.start);
            // Floating-point rounding can land exactly on the exclusive
            // bound.
            if v >= self.end { self.start } else { v }
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty range in gen_range");
        if lo <= hi {
            lo + unit_f64(next()) * (hi - lo)
        } else {
            lo
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f32 {
        debug_assert!(self.start < self.end, "empty range in gen_range");
        if self.start < self.end {
            let v = self.start + (unit_f64(next()) as f32) * (self.end - self.start);
            if v >= self.end { self.start } else { v }
        } else {
            self.start
        }
    }
}

/// Named RNG implementations (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real rand crate does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for checkpointing: a generator
        /// rebuilt via [`Self::from_state`] continues the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state captured by [`Self::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let av: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let cv: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5i32..=9);
            assert!((5..=9).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = r.gen_range(0.05f64..=1.0);
            assert!((0.05..=1.0).contains(&g));
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = SmallRng::seed_from_u64(99);
        for _ in 0..17 {
            let _ = a.gen_range(0u64..1000);
        }
        let mut b = SmallRng::from_state(a.state());
        let av: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let bv: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac = {frac}");
    }
}
