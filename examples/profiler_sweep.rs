//! FaST-Profiler sweep (paper Figure 8): profile a model's throughput
//! over the spatio-temporal configuration grid and print the table.
//!
//! ```sh
//! cargo run --release --example profiler_sweep [model]
//! ```
//!
//! `model` defaults to `resnet50`; any `fastg-models` zoo name works
//! (resnet50, bert_base, rnnt, gnmt, resnext101, vit_huge).

use fastg_des::SimTime;
use fastgshare::profiler::{ConfigServer, Experiment, ProfileDb, ProfileKey};

fn main() {
    let model = std::env::args().nth(1).unwrap_or_else(|| "resnet50".into());
    let spatial = [6.0, 12.0, 24.0, 50.0, 60.0, 80.0, 100.0];
    let temporal = [0.2, 0.4, 0.6, 0.8, 1.0];

    println!("== FaST-Profiler: {model} ==");
    println!("(each cell: requests/second from one single-pod trial)\n");

    let experiment = Experiment::new(&model, ConfigServer::paper_grid())
        .trial_duration(SimTime::from_secs(3));
    let mut db = ProfileDb::new();
    experiment.run_parallel(&mut db, 8).expect("known model");

    print!("{:>8} |", "SM \\ Q");
    for q in temporal {
        print!(" {:>7.0}% |", q * 100.0);
    }
    println!();
    println!("{}", "-".repeat(10 + temporal.len() * 11));
    for sm in spatial {
        print!("{sm:>7.0}% |");
        for q in temporal {
            let rps = db
                .get(&model, ProfileKey::new(sm, q))
                .map(|r| r.rps)
                .unwrap_or(f64::NAN);
            print!(" {rps:>8.1} |");
        }
        println!();
    }

    // The profiler's own takeaways, as §5.2 states them.
    let best = db
        .records_of(&model)
        .into_iter()
        .max_by(|a, b| {
            let rpr = |(k, r): &(ProfileKey, _)| -> f64 {
                let r: &fastgshare::profiler::ProfileRecord = r;
                r.rps / (k.sm() / 100.0 * k.quota())
            };
            rpr(a).partial_cmp(&rpr(b)).unwrap()
        })
        .expect("grid profiled");
    println!(
        "\nmost efficient configuration (highest RPS-per-resource): \
         {}% SMs x {}% quota -> {:.1} req/s",
        best.0.sm(),
        best.0.quota() * 100.0,
        best.1.rps
    );
}
