//! Quickstart: deploy one ResNet inference function on a shared V100,
//! drive it with Poisson traffic, and print the serving report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

fn main() {
    // One worker node (V100, 80 SMs, 16 GB) under the full FaST-GShare
    // policy: MPS spatial partitions + multi-token temporal scheduling.
    let mut platform = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .warmup(SimTime::from_secs(1))
            .seed(42),
    );

    // Two ResNet-50 pods, each confined to 24 % of the SMs with a full
    // time quota — the saturation partition FaST-Profiler finds for this
    // model (more SMs would buy nothing, fewer would stretch latency).
    let func = platform
        .deploy(
            FunctionConfig::new("fastsvc-resnet", "resnet50")
                .slo_ms(69)
                .replicas(2)
                .resources(24.0, 1.0, 1.0),
        )
        .expect("deploys on a fresh node");

    // 60 req/s of Poisson traffic for 10 simulated seconds.
    platform.set_load(func, ArrivalProcess::poisson(60.0, 7));
    let report = platform.run_for(SimTime::from_secs(10));

    println!("== FaST-GShare quickstart ==");
    print!("{}", report.summary());

    let f = &report.functions[&func];
    println!(
        "\n{} served {} requests at {:.1} req/s; p99 latency {}; \
         SLO {} violated on {:.2}% of requests.",
        f.name,
        f.completed,
        f.throughput_rps,
        f.p99,
        f.slo,
        f.violation_ratio * 100.0
    );
}
