//! Chaos run with recovery: a node crash at t=30s on a two-node cluster,
//! plus a degrade/recover cycle, with the health controller rebuilding
//! lost replicas on the survivor.
//!
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FaultKind, FaultPlan, FunctionConfig, Platform, PlatformConfig};

fn main() {
    // The plan is fixed before the run: the same plan + seed replays the
    // same trace event-for-event.
    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(10),
            FaultKind::NodeDegrade {
                node_index: 1,
                factor: 2.5,
            },
        )
        .at(SimTime::from_secs(20), FaultKind::NodeRecover { node_index: 1 })
        .at(SimTime::from_secs(30), FaultKind::NodeCrash { node_index: 0 });

    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(2)
            .policy(SharingPolicy::FaST)
            .fault_plan(plan)
            .recovery(true)
            .health_interval(SimTime::from_millis(500))
            .request_timeout_factor(8.0)
            .retry_budget(3)
            .warmup(SimTime::from_secs(2))
            .seed(77),
    );
    let f = p
        .deploy(
            FunctionConfig::new("fastsvc-resnet", "resnet50")
                .slo_ms(69)
                .replicas(2)
                .resources(12.0, 0.5, 1.0),
        )
        .expect("deploys");
    p.set_load(f, ArrivalProcess::poisson(40.0, 78));

    println!("== Node crash at t=30s, recovery controller on ==\n");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "t", "faults", "pods", "served", "dropped", "nodes-up"
    );
    let mut served_before = 0u64;
    for step in 1..=9 {
        let report = p.run_for(SimTime::from_secs(5));
        let fr = &report.functions[&f];
        let window = fr.completed - served_before;
        served_before = fr.completed;
        let up = (0..2).filter(|&i| p.node_up(i)).count();
        println!(
            "{:>5}s {:>8} {:>8} {:>6}/s {:>8} {:>7}/2",
            step * 5,
            p.faults_injected(),
            fr.replicas,
            window as f64 / 5.0,
            fr.dropped,
            up,
        );
    }

    let report = p.report();
    let fr = &report.functions[&f];
    println!("\n{}", report.summary());
    print!("time-to-recovery:");
    for ttr in &fr.time_to_recovery {
        print!(" {ttr}");
    }
    println!(
        "\nnode 0 up: {} | node 1 up: {} | {} faults injected | {} dropped",
        report.nodes[0].up,
        report.nodes[1].up,
        report.faults_injected,
        fr.dropped,
    );
}
