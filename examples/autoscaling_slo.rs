//! Auto-scaling under a traffic ramp (paper Figure 12): the
//! FaST-Scheduler follows the predicted RPS with Algorithm 1 and keeps
//! the ResNet 69 ms SLO.
//!
//! ```sh
//! cargo run --release --example autoscaling_slo
//! ```

use fastg_des::SimTime;
use fastg_models::zoo;
use fastg_workload::ArrivalProcess;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};
use fastgshare::profiler::{ProfileDb, ProfileKey, ProfileRecord};

/// Build the ResNet profile the scheduler scales from (analytic curves;
/// see `examples/profiler_sweep.rs` for the measured version).
fn resnet_profile() -> ProfileDb {
    let model = zoo::resnet50();
    let mut db = ProfileDb::new();
    for &(sm_pct, sms) in &[(6.0, 5u32), (12.0, 10), (24.0, 19), (50.0, 40)] {
        for &q in &[0.2, 0.4, 0.6, 0.8, 1.0] {
            db.insert(
                "resnet50",
                ProfileKey::new(sm_pct, q),
                ProfileRecord {
                    rps: model.ideal_rps(sms, q),
                    p50: model.latency_at(sms),
                    p99: model.latency_at(sms) * 2,
                    utilization: 0.0,
                    sm_occupancy: 0.0,
                },
            );
        }
    }
    db
}

fn main() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .warmup(SimTime::from_secs(2))
            .seed(121),
    );
    let f = p
        .deploy(
            FunctionConfig::new("fastsvc-resnet", "resnet50")
                .slo_ms(69)
                .replicas(1)
                .resources(12.0, 0.4, 1.0),
        )
        .expect("deploys");
    p.enable_autoscaler(resnet_profile());

    // Traffic profile: quiet start, ramp to 130 rps, hold, drop.
    p.set_load(
        f,
        ArrivalProcess::profile(
            vec![
                (SimTime::ZERO, 10.0),
                (SimTime::from_secs(10), 10.0),
                (SimTime::from_secs(30), 130.0),
                (SimTime::from_secs(40), 130.0),
                (SimTime::from_secs(45), 40.0),
                (SimTime::from_secs(60), 40.0),
            ],
            121,
        ),
    );

    println!("== Auto-scaling to meet the 69ms ResNet SLO (Figure 12) ==\n");
    println!("{:>6} {:>10} {:>8} {:>10} {:>12}", "t", "offered", "pods", "served", "p99");
    let mut served_before = 0u64;
    for step in 1..=12 {
        let report = p.run_for(SimTime::from_secs(5));
        let fr = &report.functions[&f];
        let t = SimTime::from_secs(step * 5);
        let window_served = fr.completed - served_before;
        served_before = fr.completed;
        println!(
            "{:>5}s {:>8.1}/s {:>8} {:>8.1}/s {:>12}",
            step * 5,
            // offered rate ~ completions once the scaler keeps up
            window_served as f64 / 5.0,
            fr.replicas,
            window_served as f64 / 5.0,
            fr.p99.to_string(),
        );
        let _ = t;
    }

    let report = p.report();
    let fr = &report.functions[&f];
    println!(
        "\nfinal: {} requests served, SLO violations {:.2}% (paper: < 1%), \
         final replica count {}",
        fr.completed,
        fr.violation_ratio * 100.0,
        fr.replicas
    );
}
