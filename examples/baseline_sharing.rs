//! Sharing-policy shoot-out (paper Figures 1 and 10): run the same
//! saturated workload under each GPU-sharing mechanism and compare
//! throughput, tail latency, utilization and SM occupancy.
//!
//! ```sh
//! cargo run --release --example baseline_sharing [model] [pods]
//! ```

use fastg_des::SimTime;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

fn run(policy: SharingPolicy, model: &str, pods: usize, sm: f64) -> (f64, SimTime, f64, f64) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(policy)
            .oversubscribe(true)
            .warmup(SimTime::from_secs(1))
            .seed(17),
    );
    let pods = if policy == SharingPolicy::Exclusive { 1 } else { pods };
    let f = p
        .deploy(
            FunctionConfig::new("bench", model)
                .replicas(pods)
                .resources(sm, 1.0, 1.0)
                .saturating(),
        )
        .expect("deploys");
    let r = p.run_for(SimTime::from_secs(6));
    let fr = &r.functions[&f];
    let n = &r.nodes[0];
    (fr.throughput_rps, fr.p99, n.utilization, n.sm_occupancy)
}

fn main() {
    let model = std::env::args().nth(1).unwrap_or_else(|| "resnet50".into());
    let pods: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    println!("== GPU sharing mechanisms, {model}, {pods} pods, one V100 ==\n");
    println!(
        "{:<28} {:>10} {:>12} {:>8} {:>8}",
        "policy", "req/s", "p99", "util", "SM occ"
    );

    let cases = [
        ("device plugin (exclusive)", SharingPolicy::Exclusive, 100.0),
        ("time sharing (KubeShare)", SharingPolicy::SingleToken, 100.0),
        ("racing (MPS, no control)", SharingPolicy::Racing, 100.0),
        ("FaST-GShare (12% parts)", SharingPolicy::FaST, 12.0),
        ("FaST-GShare (24% parts)", SharingPolicy::FaST, 24.0),
    ];
    let mut baseline = None;
    for (name, policy, sm) in cases {
        let (rps, p99, util, occ) = run(policy, &model, pods, sm);
        if policy == SharingPolicy::SingleToken {
            baseline = Some(rps);
        }
        println!(
            "{name:<28} {rps:>10.1} {:>12} {:>7.1}% {:>7.1}%",
            p99.to_string(),
            util * 100.0,
            occ * 100.0
        );
    }
    if let Some(ts) = baseline {
        let (fast, _, _, _) = run(SharingPolicy::FaST, &model, pods, 12.0);
        println!(
            "\nFaST-GShare vs time sharing: {:.2}x throughput \
             (paper reports 3.15x on average across models)",
            fast / ts
        );
    }
}
