//! A multi-tenant serverless inference platform: all six zoo models
//! deployed on a small GPU cluster, mixed diurnal/bursty traffic, model
//! sharing on, auto-scaling each function against its own profile.
//!
//! ```sh
//! cargo run --release --example serverless_zoo
//! ```
//!
//! This is the workload the paper's introduction motivates: many small
//! inference functions whose individual kernels cannot fill a data-center
//! GPU, packed together spatio-temporally.

use fastg_des::SimTime;
use fastg_models::zoo;
use fastg_workload::patterns;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};
use fastgshare::profiler::{ProfileDb, ProfileKey, ProfileRecord};

/// Analytic profiles for every model (the real profiler would measure
/// these; see `profiler_sweep.rs`).
fn zoo_profiles() -> ProfileDb {
    let mut db = ProfileDb::new();
    for m in zoo::all() {
        for &(sm_pct, sms) in &[(12.0, 10u32), (24.0, 19), (50.0, 40), (80.0, 64)] {
            for &q in &[0.2, 0.4, 0.6, 1.0] {
                db.insert(
                    &m.name,
                    ProfileKey::new(sm_pct, q),
                    ProfileRecord {
                        rps: m.ideal_rps(sms, q),
                        p50: m.latency_at(sms),
                        p99: m.latency_at(sms) * 2,
                        utilization: 0.0,
                        sm_occupancy: 0.0,
                    },
                );
            }
        }
    }
    db
}

fn main() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .policy(SharingPolicy::FaST)
            .model_sharing(true)
            .warmup(SimTime::from_secs(3))
            .seed(2024),
    );

    // One function per model; initial shapes from each model's sweet spot.
    let mut funcs = Vec::new();
    let initial = [
        ("resnet50", 12.0, 80.0),   // (model, SM %, mean offered rps)
        ("bert_base", 50.0, 20.0),
        ("rnnt", 24.0, 6.0),
        ("gnmt", 50.0, 10.0),
        ("resnext101", 50.0, 8.0),
        ("vit_huge", 80.0, 2.0),
    ];
    for (model, sm, _) in initial {
        let f = p
            .deploy(
                FunctionConfig::new(&format!("fastsvc-{model}"), model)
                    .slo_ms(1_000)
                    .replicas(1)
                    .resources(sm, 0.4, 1.0),
            )
            .expect("deploys");
        funcs.push((f, model));
    }
    p.enable_autoscaler(zoo_profiles());

    // Traffic: ResNet sees a diurnal swing, BERT gets bursts, the rest
    // hold steady Poisson rates.
    for (i, &(f, model)) in funcs.iter().enumerate() {
        let mean = initial[i].2;
        let load = match model {
            "resnet50" => patterns::diurnal(
                mean * 0.3,
                mean * 2.0,
                SimTime::from_secs(30),
                2,
                100 + i as u64,
            ),
            "bert_base" => patterns::bursty(
                mean * 0.5,
                mean * 2.5,
                4,
                SimTime::from_secs(5),
                SimTime::from_secs(60),
                200 + i as u64,
            ),
            _ => fastg_workload::ArrivalProcess::poisson(mean, 300 + i as u64),
        };
        p.set_load(f, load);
    }

    let report = p.run_for(SimTime::from_secs(60));
    println!("== Multi-tenant serverless zoo: 6 models, 4 V100s, 60s ==\n");
    print!("{}", report.summary());
    println!(
        "\ntotals: {:.1} req/s across {} functions | {} GPUs active | \
         {} pods unschedulable",
        report.total_throughput(),
        report.functions.len(),
        report.gpus_used(),
        report.unschedulable_pods,
    );
    let worst = report
        .functions
        .values()
        .max_by(|a, b| a.violation_ratio.partial_cmp(&b.violation_ratio).unwrap())
        .expect("functions exist");
    println!(
        "worst SLO compliance: {} at {:.2}% violations",
        worst.name,
        worst.violation_ratio * 100.0
    );
}
