//! Maximal Rectangles packing demo (paper §3.4.2, Figure 11): bind the
//! evaluation's pod set to GPUs under FaST vs time-sharing placement and
//! show the resource rectangles.
//!
//! ```sh
//! cargo run --release --example scheduler_packing
//! ```

use fastg_cluster::{NodeId, PodId, ResourceSpec};
use fastgshare::scheduler::{NodeSelector, PlacementPolicy};

fn pod_set() -> Vec<(&'static str, ResourceSpec, usize)> {
    vec![
        // Descending area order, as the FaST-Scheduler submits them.
        ("bert (50%,60%)", ResourceSpec::new(50.0, 0.6, 0.6, 0), 2),
        ("rnnt (24%,40%)", ResourceSpec::new(24.0, 0.4, 0.4, 0), 2),
        ("resnet (12%,40%)", ResourceSpec::new(12.0, 0.4, 0.4, 0), 4),
    ]
}

fn pack(policy: PlacementPolicy) -> NodeSelector {
    let mut s = NodeSelector::new(policy);
    for i in 0..4 {
        s.add_gpu(NodeId(i));
    }
    let mut id = 0u64;
    for (name, spec, n) in pod_set() {
        for _ in 0..n {
            match s.place(PodId(id), &spec, |_| true) {
                Some((node, rect)) => println!(
                    "  {name:<18} -> GPU{} at quota[{}..{}] x SM[{}..{}]",
                    node.0,
                    rect.x,
                    rect.right(),
                    rect.y,
                    rect.top()
                ),
                None => println!("  {name:<18} -> UNSCHEDULABLE (new GPU required)"),
            }
            id += 1;
        }
    }
    s
}

fn main() {
    println!("== Node selection for the Figure 11 pod set ==");
    println!("\n-- FaST-Scheduler (Maximal Rectangles, 2D) --");
    let fast = pack(PlacementPolicy::MaximalRectangles);
    println!(
        "GPUs used: {}   total bound area: {} secondCores   mean fragmentation: {:.1}%",
        fast.gpus_in_use(),
        fast.total_used_area(),
        fast.mean_fragmentation() * 100.0
    );

    println!("\n-- Time sharing placement (KubeShare: every pod needs 100% SMs) --");
    let ts = pack(PlacementPolicy::TimeSharingOnly);
    println!(
        "GPUs used: {}   total bound area: {} secondCores",
        ts.gpus_in_use(),
        ts.total_used_area()
    );

    println!(
        "\npaper Figure 11: FaST packs all eight pods onto 1 GPU; \
         time sharing needs all 4 GPUs."
    );
}
