//! Model-sharing memory study (paper Figure 13): per-model footprints
//! with and without the IPC store, on the real allocator of a simulated
//! 16 GB V100.
//!
//! ```sh
//! cargo run --release --example model_sharing
//! ```

use fastg_models::zoo;
use fastgshare::modelshare::footprint;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

const MIB: u64 = 1024 * 1024;
const CTX: u64 = 300 * MIB;

fn live_footprint(model: &str, pods: usize, sharing: bool) -> u64 {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .model_sharing(sharing)
            .oversubscribe(true)
            .seed(3),
    );
    p.deploy(
        FunctionConfig::new("f", model)
            .replicas(pods)
            .resources(12.0, 0.5, 0.5),
    )
    .expect("fits");
    p.node_memory_used(0)
}

fn main() {
    println!("== Model sharing memory footprints (Figure 13) ==\n");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}",
        "model", "original", "shared(1)", "shared pod", "saved/pod"
    );
    for m in zoo::all() {
        let orig = m.memory.total() / MIB;
        let shared1 = footprint::total_for(&m.memory, 1, true, CTX) / MIB;
        let pod = m.memory.shared_instance() / MIB;
        let saved = 100.0 * (1.0 - pod as f64 / orig as f64);
        println!(
            "{:<12} {:>9}M {:>11}M {:>11}M {:>9.1}%",
            m.name, orig, shared1, pod, saved
        );
    }

    println!("\n-- multi-pod deployments on one 16 GB V100 (live allocator) --");
    for (model, pods) in [("vit_huge", 3usize), ("resnext101", 4), ("resnet50", 8)] {
        let with = live_footprint(model, pods, true);
        let without = live_footprint(model, pods, false);
        println!(
            "{pods} x {model:<12} with sharing {:>6} MiB   without {:>6} MiB   saved {:>5} MiB",
            with / MIB,
            without / MIB,
            (without.saturating_sub(with)) / MIB
        );
    }

    let rx = zoo::resnext101().memory;
    println!(
        "\ncapacity: a 16 GB V100 fits {} ResNeXt pods with sharing vs {} without \
         (paper: 7 vs 4)",
        footprint::max_pods(&rx, 16 * 1024 * MIB, true, CTX),
        footprint::max_pods(&rx, 16 * 1024 * MIB, false, CTX),
    );
}
