//! Checkpoint/restore digest parity: suspending a platform at an instant
//! T and resuming from the snapshot must reproduce the straight-through
//! run byte-for-byte — chaos plans, overload control, cluster
//! fast-forward and every same-instant tie-break order included.
//!
//! These are the correctness bars the prefix-shared sweep and the
//! checkpoint-forking search lean on: if any of them breaks, warm-resume
//! is silently diverging from the reference simulation.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::{SchedPolicy, SharingPolicy};
use fastgshare::platform::{
    FaultKind, FaultPlan, FunctionConfig, Platform, PlatformConfig, Snapshot, TieBreak,
};
use proptest::prelude::*;

/// The four canonical same-instant delivery orders (the `race_detector`
/// matrix).
const TIEBREAKS: [TieBreak; 4] = [
    TieBreak::Fifo,
    TieBreak::Lifo,
    TieBreak::SeededShuffle(1),
    TieBreak::SeededShuffle(2),
];

/// The standard chaos plan: pod crash, clock degrade, node crash, node
/// recover — one event per second, so any checkpoint instant in (0, 5 s)
/// lands between two pending faults.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .at(SimTime::from_secs(1), FaultKind::PodCrash { func_index: 0 })
        .at(
            SimTime::from_secs(2),
            FaultKind::NodeDegrade {
                node_index: 1,
                factor: 2.0,
            },
        )
        .at(SimTime::from_secs(3), FaultKind::NodeCrash { node_index: 0 })
        .at(SimTime::from_secs(4), FaultKind::NodeRecover { node_index: 1 })
}

/// The fleet-shaped scenario from `determinism.rs`: three single-replica
/// constant-rate functions on three nodes, chaos plan armed, both
/// fast-forward layers on, under a chosen tie-break order.
fn fleet_platform(tiebreak: TieBreak, overload: bool) -> Platform {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(3)
            .policy(SharingPolicy::FaST)
            .oversubscribe(true)
            .recovery(true)
            .seed(23)
            .fastforward(true)
            .cluster_fastforward(true)
            .overload_control(overload)
            .tiebreak(tiebreak)
            .fault_plan(chaos_plan()),
    );
    for (i, (model, rate)) in [("resnet50", 18.0), ("bert_base", 30.0), ("rnnt", 9.0)]
        .iter()
        .enumerate()
    {
        let f = p
            .deploy(
                FunctionConfig::new(&format!("fleet-{i}"), model)
                    .replicas(1)
                    .resources(100.0, 1.0, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::constant(*rate));
    }
    p
}

/// Splits a 6 s run at `at`: the straight-through reference runs both
/// halves on one platform; the resumed run checkpoints at the split,
/// drops the live platform, restores from the snapshot and runs the
/// second half. Returns each second-half report's canonical text plus
/// the final event/cycle counters of both runs.
fn split_run(
    mut straight: Platform,
    mut twin: Platform,
    at: SimTime,
    total: SimTime,
) -> ((String, u64, u64), (String, u64, u64)) {
    let rest = total.saturating_sub(at);

    straight.run_for(at);
    let handled_at_split = straight.events_handled();
    let s_report = straight.run_for(rest);
    let s = (
        s_report.canonical_text(),
        straight.events_handled(),
        straight.ff_cluster_cycles(),
    );

    twin.run_for(at);
    let snapshot = twin.checkpoint();
    drop(twin);
    let mut resumed = Platform::from_snapshot(&snapshot).unwrap();
    assert_eq!(
        resumed.events_handled(),
        handled_at_split,
        "restore must resume the event counter where the snapshot left it"
    );
    assert_eq!(resumed.now(), at, "restore must resume the clock at the split");
    let r_report = resumed.run_for(rest);
    let r = (
        r_report.canonical_text(),
        resumed.events_handled(),
        resumed.ff_cluster_cycles(),
    );
    (s, r)
}

/// Checkpoint-at-T ≡ straight-through on the chaotic fleet, under all
/// four tie-break orders — and cluster fast-forward genuinely engaged,
/// or the parity claim would be vacuous.
#[test]
fn fleet_checkpoint_parity_across_tiebreak_orders() {
    for tb in TIEBREAKS {
        let (s, r) = split_run(
            fleet_platform(tb, false),
            fleet_platform(tb, false),
            SimTime::from_millis(2500),
            SimTime::from_secs(6),
        );
        assert!(s.2 > 0, "cluster fast-forward never engaged under {tb:?}");
        assert_eq!(s.0, r.0, "resume diverged from straight-through under {tb:?}");
        assert_eq!(s.1, r.1, "event counts diverged under {tb:?}");
        assert_eq!(s.2, r.2, "steady-cycle credit diverged under {tb:?}");
    }
}

/// The same fleet with the overload control plane armed: admission
/// queues, EWMA estimators and breaker windows all ride the snapshot.
#[test]
fn overloaded_fleet_checkpoint_parity_across_tiebreak_orders() {
    for tb in TIEBREAKS {
        let (s, r) = split_run(
            fleet_platform(tb, true),
            fleet_platform(tb, true),
            SimTime::from_millis(2500),
            SimTime::from_secs(6),
        );
        assert_eq!(s.0, r.0, "overloaded resume diverged under {tb:?}");
        assert_eq!(s.1, r.1, "overloaded event counts diverged under {tb:?}");
    }
}

/// Checkpoint instants swept across the chaos timeline: before the first
/// fault, between every pair of faults, and after the last — each split
/// must be digest-exact, with pending fault events riding the snapshot.
#[test]
fn checkpoint_at_every_chaos_phase_is_digest_exact() {
    for at_ms in [500u64, 1500, 3500, 5500] {
        let (s, r) = split_run(
            fleet_platform(TieBreak::Fifo, false),
            fleet_platform(TieBreak::Fifo, false),
            SimTime::from_millis(at_ms),
            SimTime::from_secs(6),
        );
        assert_eq!(s.0, r.0, "resume diverged when split at {at_ms} ms");
        assert_eq!(s.1, r.1, "event counts diverged when split at {at_ms} ms");
    }
}

/// The flash-crowd overload scenario on the guillotine fast path (the
/// `fastpath_overload_digest` fixture): checkpointing mid-crowd, while
/// shedding and breaker state are live, resumes byte-identically.
fn flash_crowd_platform(tiebreak: TieBreak) -> Platform {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(2)
            .policy(SharingPolicy::FaST)
            .scheduler(SchedPolicy::FastPath)
            .recovery(true)
            .seed(17)
            .fastforward(true)
            .overload_control(true)
            .tiebreak(tiebreak)
            .fault_plan(chaos_plan()),
    );
    let f = p
        .deploy(
            FunctionConfig::new("flash", "resnet50")
                .slo_ms(200)
                .replicas(2)
                .resources(50.0, 0.5, 0.8),
        )
        .unwrap();
    p.set_load(
        f,
        fastg_workload::patterns::flash_crowd(
            30.0,
            400.0,
            SimTime::from_secs(1),
            SimTime::from_millis(500),
            SimTime::from_secs(2),
            SimTime::from_secs(6),
            1,
            19,
        ),
    );
    p
}

#[test]
fn flash_crowd_checkpoint_parity_across_tiebreak_orders() {
    for tb in TIEBREAKS {
        // 2.5 s is inside the crowd plateau: shedding, brownout and
        // breaker state are all live at the split.
        let (s, r) = split_run(
            flash_crowd_platform(tb),
            flash_crowd_platform(tb),
            SimTime::from_millis(2500),
            SimTime::from_secs(6),
        );
        assert_eq!(s.0, r.0, "flash-crowd resume diverged under {tb:?}");
        assert_eq!(s.1, r.1, "flash-crowd event counts diverged under {tb:?}");
    }
}

/// Snapshots survive serialization: shipping the bytes through
/// `as_bytes` → `Snapshot::from_bytes` (the cross-process path) restores
/// the same run as the in-memory snapshot.
#[test]
fn snapshot_round_trips_through_raw_bytes() {
    let mut p = fleet_platform(TieBreak::Fifo, false);
    p.run_for(SimTime::from_secs(3));
    let snapshot = p.checkpoint();

    let mut direct = Platform::from_snapshot(&snapshot).unwrap();
    let shipped = Snapshot::from_bytes(snapshot.as_bytes().to_vec()).unwrap();
    let mut revived = Platform::from_snapshot(&shipped).unwrap();

    let a = direct.run_for(SimTime::from_secs(3));
    let b = revived.run_for(SimTime::from_secs(3));
    assert_eq!(a.canonical_text(), b.canonical_text());
    assert_eq!(a.digest(), b.digest());
}

/// A random fleet grid for checkpoint parity: node count, load, seed and
/// mid-run perturbations — kills and reconfigurations on either side of
/// the checkpoint instant — all drawn at random.
#[derive(Debug, Clone, Copy)]
struct CkptGrid {
    nodes: usize,
    rate: u32,
    seed: u64,
    /// Kill the first function's pod just before the checkpoint instant.
    kill_before: bool,
    /// Kill the last function's pod after the resume.
    kill_after: bool,
    /// Reconfigure the last function's partition before the checkpoint.
    reconfig: bool,
    /// Inject the degrade/recover chaos plan.
    chaos: bool,
    /// Milliseconds past the 1 s mark at which to checkpoint.
    split_ms: u64,
}

fn arb_ckpt_grid() -> impl Strategy<Value = CkptGrid> {
    (
        2usize..5,
        5u32..45,
        0u64..1000,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        200u64..1500,
    )
        .prop_map(
            |(nodes, rate, seed, kill_before, kill_after, reconfig, chaos, split_ms)| CkptGrid {
                nodes,
                rate,
                seed,
                kill_before,
                kill_after,
                reconfig,
                chaos,
                split_ms,
            },
        )
}

const GRID_MODELS: [&str; 4] = ["resnet50", "bert_base", "rnnt", "resnext101"];

/// Drives one grid point: run to 1 s, perturb, run to the split instant,
/// optionally checkpoint → drop → restore, perturb again, run the final
/// window. With `checkpoint == false` this is the straight-through
/// reference the resumed run must match byte-for-byte.
fn ckpt_grid_run(g: CkptGrid, checkpoint: bool) -> (String, u64) {
    let mut cfg = PlatformConfig::default()
        .nodes(g.nodes)
        .policy(SharingPolicy::FaST)
        .oversubscribe(true)
        .seed(g.seed)
        .fastforward(true)
        .cluster_fastforward(true);
    if g.chaos {
        cfg = cfg.fault_plan(
            FaultPlan::new()
                .at(
                    SimTime::from_millis(1500),
                    FaultKind::NodeDegrade {
                        node_index: 0,
                        factor: 1.5,
                    },
                )
                .at(
                    SimTime::from_millis(2500),
                    FaultKind::NodeRecover { node_index: 0 },
                ),
        );
    }
    let mut p = Platform::new(cfg);
    let mut funcs = Vec::new();
    for i in 0..g.nodes {
        let f = p
            .deploy(
                FunctionConfig::new(&format!("f{i}"), GRID_MODELS[i % GRID_MODELS.len()])
                    .replicas(1)
                    .resources(100.0, 1.0, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::constant(f64::from(g.rate) + i as f64));
        funcs.push(f);
    }
    p.run_for(SimTime::from_secs(1));
    if g.kill_before {
        if let Some(&victim) = p.pods_of(funcs[0]).first() {
            p.kill_pod(victim);
        }
    }
    if g.reconfig {
        let _ = p.reconfigure(funcs[g.nodes - 1], 50.0, 1.0, 1.0);
    }
    p.run_for(SimTime::from_millis(g.split_ms));
    if checkpoint {
        let snapshot = p.checkpoint();
        drop(p);
        p = Platform::from_snapshot(&snapshot).unwrap();
    }
    if g.kill_after {
        if let Some(&victim) = p.pods_of(funcs[g.nodes - 1]).first() {
            p.kill_pod(victim);
        }
    }
    let report = p.run_for(SimTime::from_secs(2));
    (report.canonical_text(), p.events_handled())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `restore(checkpoint(p))` digest parity over random fleet grids:
    /// whatever the topology, load, chaos or mid-run churn on either
    /// side of the split, the resumed run must reproduce the
    /// straight-through report byte-for-byte.
    #[test]
    fn checkpoint_parity_on_random_fleet_grids(g in arb_ckpt_grid()) {
        let (straight, s_events) = ckpt_grid_run(g, false);
        let (resumed, r_events) = ckpt_grid_run(g, true);
        prop_assert_eq!(s_events, r_events, "event counts diverged on {:?}", g);
        prop_assert_eq!(straight, resumed, "checkpoint parity broke on {:?}", g);
    }
}
