//! End-to-end platform scenarios: the headline comparisons of §5.3.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

/// A one-node platform with `n` saturating pods of `model` at the given
/// partition, returning total steady-state throughput and mean tail
/// latency.
fn saturated_run(
    policy: SharingPolicy,
    model: &str,
    pods: usize,
    sm: f64,
) -> (f64, SimTime, f64, f64) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(policy)
            .oversubscribe(true)
            .warmup(SimTime::from_secs(1))
            .seed(11),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", model)
                .replicas(pods)
                .resources(sm, 1.0, 1.0)
                .saturating(),
        )
        .unwrap();
    let report = p.run_for(SimTime::from_secs(6));
    let fr = &report.functions[&f];
    let node = &report.nodes[0];
    (
        fr.throughput_rps,
        fr.p99,
        node.utilization,
        node.sm_occupancy,
    )
}

/// §5.3: eight ResNet pods at 12 % SM partitions vs the time-sharing
/// ceiling (single racing pod). Paper: ≥ 3.15× more throughput.
#[test]
fn spatial_sharing_beats_time_sharing_resnet() {
    let (racing_rps, _, _, _) = saturated_run(SharingPolicy::Racing, "resnet50", 1, 100.0);
    let (spatial_rps, _, _, spatial_occ) = saturated_run(SharingPolicy::FaST, "resnet50", 8, 12.0);
    assert!(
        (racing_rps - 71.4).abs() < 8.0,
        "single racing pod should serve ~71 rps, got {racing_rps}"
    );
    let speedup = spatial_rps / racing_rps;
    assert!(
        speedup > 3.15,
        "spatial sharing speedup {speedup:.2} below the paper's 3.15x \
         ({spatial_rps:.1} vs {racing_rps:.1} rps)"
    );
    // Eight concurrent partitions should multiply SM occupancy.
    let (_, _, _, racing_occ) = saturated_run(SharingPolicy::Racing, "resnet50", 1, 100.0);
    assert!(
        spatial_occ > racing_occ * 2.5,
        "occupancy {spatial_occ:.3} vs racing {racing_occ:.3}"
    );
}

/// §5.3: eight RNNT pods at 12 % reach ~40 req/s vs ~12.5 racing.
#[test]
fn spatial_sharing_beats_time_sharing_rnnt() {
    let (racing_rps, racing_p99, racing_util, _) =
        saturated_run(SharingPolicy::Racing, "rnnt", 1, 100.0);
    let (spatial_rps, spatial_p99, spatial_util, _) =
        saturated_run(SharingPolicy::FaST, "rnnt", 8, 12.0);
    assert!(
        (racing_rps - 12.5).abs() < 2.0,
        "single racing RNNT pod ~12.5 rps, got {racing_rps}"
    );
    assert!(
        spatial_rps > 35.0 && spatial_rps < 55.0,
        "8-pod RNNT total ~40-43 rps, got {spatial_rps}"
    );
    // Paper: 8 spatial pods run with sub-500ms tails and near-full
    // utilization; the single pod leaves the GPU mostly idle.
    assert!(spatial_p99 < SimTime::from_millis(500), "p99 {spatial_p99}");
    assert!(racing_p99 < spatial_p99 * 3, "racing p99 {racing_p99}");
    assert!(
        racing_util < 0.45,
        "single RNNT pod should leave GPU mostly idle, util {racing_util}"
    );
    assert!(
        spatial_util > racing_util * 1.8,
        "util {spatial_util} vs {racing_util}"
    );
}

/// Time sharing's aggregate throughput cannot exceed a single racing pod
/// (§5.3: "the maximum throughput achievable through time sharing is
/// indicated by the throughput in a single racing pod").
#[test]
fn time_sharing_throughput_capped_at_single_pod() {
    let (racing_rps, _, _, _) = saturated_run(SharingPolicy::Racing, "resnet50", 1, 100.0);
    let (ts_rps, _, _, _) = saturated_run(SharingPolicy::SingleToken, "resnet50", 8, 100.0);
    assert!(
        ts_rps <= racing_rps * 1.10,
        "time sharing {ts_rps:.1} rps exceeds the racing ceiling {racing_rps:.1}"
    );
}

/// Figure 1 contrast: under extreme workload the exclusive/time-sharing
/// GPU looks "busy" (utilization) while almost all SMs idle (occupancy).
#[test]
fn utilization_occupancy_divergence_under_time_sharing() {
    let (_, _, util, occ) = saturated_run(SharingPolicy::SingleToken, "resnet50", 8, 100.0);
    assert!(util > 0.5, "time sharing utilization should look high: {util}");
    // ResNet kernels use ~19 of 80 SMs while resident, so occupancy stays
    // below ~20 % even though the GPU is "busy" most of the time (the
    // paper's Figure 1b shows <10 % for its workload mix).
    assert!(occ < 0.2, "SM occupancy should stay low: {occ}");
    assert!(
        util / occ > 4.0,
        "divergence too small: util {util:.2} / occ {occ:.2}"
    );
}

/// Over-subscribed racing degrades tail latency relative to partitioned
/// spatial sharing at equal pod count (Figure 10).
#[test]
fn racing_has_worse_tails_than_partitioned_sharing() {
    let (racing_rps, racing_p99, _, _) = saturated_run(SharingPolicy::Racing, "resnet50", 8, 100.0);
    let (fast_rps, fast_p99, _, _) = saturated_run(SharingPolicy::FaST, "resnet50", 8, 12.0);
    assert!(
        racing_p99 > fast_p99,
        "racing p99 {racing_p99} should exceed partitioned p99 {fast_p99}"
    );
    // Both saturate the GPU's useful capacity within a factor.
    assert!(fast_rps > racing_rps * 0.5, "{fast_rps} vs {racing_rps}");
}

/// Two functions with disjoint partitions coexist without starving each
/// other.
#[test]
fn multi_function_coexistence() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .warmup(SimTime::from_secs(1))
            .seed(5),
    );
    let resnet = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .replicas(2)
                .resources(24.0, 1.0, 1.0),
        )
        .unwrap();
    let bert = p
        .deploy(
            FunctionConfig::new("bert", "bert_base")
                .replicas(1)
                .resources(50.0, 1.0, 1.0),
        )
        .unwrap();
    p.set_load(resnet, ArrivalProcess::poisson(60.0, 21));
    p.set_load(bert, ArrivalProcess::poisson(25.0, 22));
    let report = p.run_for(SimTime::from_secs(6));
    let r = &report.functions[&resnet];
    let b = &report.functions[&bert];
    // Offered loads are below each function's capacity: both keep up.
    assert!((r.throughput_rps - 60.0).abs() < 8.0, "resnet {}", r.throughput_rps);
    assert!((b.throughput_rps - 25.0).abs() < 5.0, "bert {}", b.throughput_rps);
    assert!(r.p99 < SimTime::from_millis(250), "resnet p99 {}", r.p99);
    assert!(b.p99 < SimTime::from_millis(400), "bert p99 {}", b.p99);
}

/// Pods and requests drain cleanly: no events reference deleted pods.
#[test]
fn drain_during_load_is_clean() {
    let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(9));
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(4)
                .resources(12.0, 1.0, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(100.0, 33));
    p.run_for(SimTime::from_secs(2));
    p.scale_to(f, 1);
    let report = p.run_for(SimTime::from_secs(3));
    assert_eq!(report.functions[&f].replicas, 1);
    assert!(report.functions[&f].completed > 100);
}
