//! Resource isolation (§5.2–§5.3, Figure 9): temporal quotas bound usage,
//! spatial partitions prevent interference.

use fastg_des::SimTime;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

fn platform(policy: SharingPolicy, seed: u64) -> Platform {
    // Figure 9 deliberately over-subscribes the temporal axis
    // (0.8 + 0.5 > 1.0), so placement admission is off throughout.
    Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(policy)
            .oversubscribe(true)
            .warmup(SimTime::from_secs(1))
            .seed(seed),
    )
}

/// Temporal isolation: throughput under a quota is proportional to the
/// quota (Figure 8's temporal axis), so a pod cannot exceed its share.
#[test]
fn quota_bounds_throughput_proportionally() {
    let mut rates = Vec::new();
    for quota in [0.2, 0.4, 0.8] {
        let mut p = platform(SharingPolicy::FaST, 3);
        let f = p
            .deploy(
                FunctionConfig::new("f", "resnet50")
                    .resources(100.0, quota, quota)
                    .saturating(),
            )
            .unwrap();
        let report = p.run_for(SimTime::from_secs(5));
        rates.push(report.functions[&f].throughput_rps);
    }
    let (r20, r40, r80) = (rates[0], rates[1], rates[2]);
    assert!((r40 / r20 - 2.0).abs() < 0.25, "r40/r20 = {}", r40 / r20);
    assert!((r80 / r20 - 4.0).abs() < 0.5, "r80/r20 = {}", r80 / r20);
}

/// Spatial isolation: a pod's partition caps its concurrent SM usage even
/// when the rest of the GPU idles — more partition beyond the model's
/// saturation point buys nothing (Figure 8's spatial axis).
#[test]
fn partition_bounds_and_saturates_throughput() {
    let mut rates = Vec::new();
    for sm in [6.0, 12.0, 24.0, 50.0] {
        let mut p = platform(SharingPolicy::FaST, 4);
        let f = p
            .deploy(
                FunctionConfig::new("f", "resnet50")
                    .resources(sm, 1.0, 1.0)
                    .saturating(),
            )
            .unwrap();
        let report = p.run_for(SimTime::from_secs(5));
        rates.push(report.functions[&f].throughput_rps);
    }
    let (r6, r12, r24, r50) = (rates[0], rates[1], rates[2], rates[3]);
    // Strong growth up to the saturation point, negligible beyond.
    assert!(r12 > r6 * 1.3, "6→12 %: {r6} → {r12}");
    assert!(r24 > r12 * 1.3, "12→24 %: {r12} → {r24}");
    assert!(
        (r50 - r24).abs() / r24 < 0.08,
        "beyond saturation: {r24} → {r50}"
    );
}

/// Figure 9 with time sharing only: ResNet (50 %–80 % elastic quota) and
/// RNNT (50 %–50 %) over-subscribe the window (80+50 > 100), so starting
/// RNNT mid-run steals ResNet's elastic share — visible interference.
#[test]
fn time_sharing_elastic_quota_interference() {
    // Phase 1: ResNet alone, free to use its 80 % limit.
    let mut p = platform(SharingPolicy::SingleToken, 7);
    let resnet = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .resources(100.0, 0.5, 0.8)
                .saturating(),
        )
        .unwrap();
    let alone = p.run_for(SimTime::from_secs(4)).functions[&resnet].throughput_rps;

    // Phase 2: same deployment plus a saturating RNNT competitor.
    let mut p = platform(SharingPolicy::SingleToken, 7);
    let resnet = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .resources(100.0, 0.5, 0.8)
                .saturating(),
        )
        .unwrap();
    let _rnnt = p
        .deploy(
            FunctionConfig::new("rnnt", "rnnt")
                .resources(100.0, 0.5, 0.5)
                .saturating(),
        )
        .unwrap();
    let contended = p.run_for(SimTime::from_secs(4)).functions[&resnet].throughput_rps;

    assert!(
        contended < alone * 0.92,
        "expected interference: alone {alone:.1} rps vs contended {contended:.1} rps"
    );
}

/// Figure 9 with spatio-temporal sharing: both pods at disjoint 24 %
/// partitions — no mutual influence.
#[test]
fn spatial_partitions_eliminate_interference() {
    let mut p = platform(SharingPolicy::FaST, 8);
    let resnet = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .resources(24.0, 0.5, 0.8)
                .saturating(),
        )
        .unwrap();
    let alone = p.run_for(SimTime::from_secs(4)).functions[&resnet].throughput_rps;

    let mut p = platform(SharingPolicy::FaST, 8);
    let resnet = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .resources(24.0, 0.5, 0.8)
                .saturating(),
        )
        .unwrap();
    let _rnnt = p
        .deploy(
            FunctionConfig::new("rnnt", "rnnt")
                .resources(24.0, 0.5, 0.5)
                .saturating(),
        )
        .unwrap();
    let contended = p.run_for(SimTime::from_secs(4)).functions[&resnet].throughput_rps;

    let drop = (alone - contended) / alone;
    assert!(
        drop < 0.05,
        "spatial sharing should isolate: alone {alone:.1} vs contended {contended:.1} \
         ({:.1}% drop)",
        drop * 100.0
    );
}

/// The SM Allocation Adapter never admits more than 100 % of SM shares:
/// with 8 × 24 % pods, concurrency is throttled but correctness holds.
#[test]
fn sm_adapter_over_subscription_still_serves() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .oversubscribe(true)
            .warmup(SimTime::from_secs(1))
            .seed(12),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(8)
                .resources(24.0, 1.0, 1.0)
                .saturating(),
        )
        .unwrap();
    let report = p.run_for(SimTime::from_secs(5));
    let fr = &report.functions[&f];
    // 4 × 24 % run concurrently; the other four rotate in. Throughput
    // lands near 4 concurrent pods' worth, not 8.
    let four_pods = 4.0 / (0.004 + fastg_models::zoo::resnet50().latency_at(19).as_secs_f64() - 0.004);
    assert!(fr.throughput_rps > 100.0, "rps {}", fr.throughput_rps);
    assert!(
        fr.throughput_rps < four_pods * 1.45,
        "rps {} vs 4-pod bound {four_pods}",
        fr.throughput_rps
    );
}
