//! Failure injection: pods crash mid-flight; the platform must not lose
//! requests, leak GPU resources, or panic — and must keep serving.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

fn loaded_platform(seed: u64) -> (Platform, fastg_cluster::FuncId) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .seed(seed),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(4)
                .resources(12.0, 1.0, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(80.0, seed + 1));
    (p, f)
}

/// A crashed pod's in-flight request is retried, not dropped: every
/// arrival is eventually completed (or still queued at the end).
#[test]
fn crashed_requests_are_retried() {
    let (mut p, f) = loaded_platform(41);
    p.run_for(SimTime::from_secs(1));
    // Kill two pods mid-load; replace them so capacity recovers.
    let pods = p.pods_of(f);
    assert!(p.kill_pod(pods[0]));
    assert!(p.kill_pod(pods[1]));
    assert_eq!(p.killed_pods(), 2);
    p.scale_to(f, 4);
    let report = p.run_for(SimTime::from_secs(5));
    let fr = &report.functions[&f];
    // Offered 80 rps with capacity ~160: everything completes except the
    // handful still in flight at the horizon.
    assert!(
        fr.arrivals - fr.completed < 8,
        "lost requests: {} arrived, {} completed",
        fr.arrivals,
        fr.completed
    );
    assert!((fr.throughput_rps - 80.0).abs() < 10.0, "rps {}", fr.throughput_rps);
}

/// Killing every pod and rescaling from zero works; memory and MPS
/// clients are fully reclaimed in between.
#[test]
fn total_crash_and_recovery() {
    let (mut p, f) = loaded_platform(42);
    p.run_for(SimTime::from_secs(1));
    for pod in p.pods_of(f) {
        p.kill_pod(pod);
    }
    // Let zombie kernels drain.
    p.run_for(SimTime::from_secs(1));
    assert_eq!(p.replicas(f), 0);
    // All device memory is back (model weights may persist only while a
    // pod references them; with zero pods everything is freed).
    assert_eq!(p.node_memory_used(0), 0, "leaked device memory");
    // Recover.
    p.scale_to(f, 3);
    let report = p.run_for(SimTime::from_secs(4));
    assert_eq!(report.functions[&f].replicas, 3);
    assert!(report.functions[&f].completed > 100);
}

/// Random kill/respawn churn: the platform stays consistent and keeps
/// serving under constant failures (one crash every ~400 ms).
#[test]
fn chaos_churn_keeps_serving() {
    let (mut p, f) = loaded_platform(43);
    let mut victim = 0usize;
    for _ in 0..20 {
        p.run_for(SimTime::from_millis(400));
        let pods = p.pods_of(f);
        if !pods.is_empty() {
            p.kill_pod(pods[victim % pods.len()]);
            victim += 1;
        }
        p.scale_to(f, 4);
    }
    let report = p.run_for(SimTime::from_secs(2));
    let fr = &report.functions[&f];
    assert_eq!(p.killed_pods(), 20);
    assert!(
        fr.arrivals - fr.completed < 10,
        "{} arrived vs {} completed",
        fr.arrivals,
        fr.completed
    );
    // Serving never collapsed: mean throughput stays near the offer.
    assert!(fr.throughput_rps > 65.0, "rps {}", fr.throughput_rps);
}

/// Determinism holds under failure injection too.
#[test]
fn chaos_is_deterministic() {
    let run = || {
        let (mut p, f) = loaded_platform(44);
        for i in 0..10 {
            p.run_for(SimTime::from_millis(300));
            let pods = p.pods_of(f);
            if !pods.is_empty() {
                p.kill_pod(pods[i % pods.len()]);
            }
            p.scale_to(f, 4);
        }
        let r = p.run_for(SimTime::from_secs(2));
        (p.events_handled(), r.functions[&f].completed, r.functions[&f].p99)
    };
    assert_eq!(run(), run());
}

/// Regression (found by `properties_platform::no_request_is_ever_lost`):
/// requests that queue while *zero* replicas exist must be picked up by
/// the replacement pods the moment they are created.
#[test]
fn backlog_drains_onto_replacement_pods() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .seed(46),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(2)
                .resources(12.0, 1.0, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::constant(30.0));
    p.run_for(SimTime::from_millis(500));
    // Wipe out every replica; arrivals keep landing in the gateway queue.
    for pod in p.pods_of(f) {
        p.kill_pod(pod);
    }
    p.run_for(SimTime::from_secs(1));
    assert_eq!(p.replicas(f), 0);
    // Replacements must drain the accumulated backlog unprompted.
    p.scale_to(f, 2);
    p.set_load(f, ArrivalProcess::constant(0.0));
    let report = p.run_for(SimTime::from_secs(4));
    let fr = &report.functions[&f];
    assert_eq!(
        fr.arrivals, fr.completed,
        "backlog stranded: {} arrived, {} completed",
        fr.arrivals, fr.completed
    );
}

/// Killing an idle pod (no request in flight) tears down immediately.
#[test]
fn idle_pod_kill_is_immediate() {
    let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(45));
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(2)
                .resources(12.0, 1.0, 1.0),
        )
        .unwrap();
    let pods = p.pods_of(f);
    assert!(p.kill_pod(pods[0]));
    assert_eq!(p.replicas(f), 1);
    // Double-kill is a no-op.
    assert!(!p.kill_pod(pods[0]));
    assert_eq!(p.killed_pods(), 1);
}
