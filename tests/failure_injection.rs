//! Failure injection: pods crash mid-flight; the platform must not lose
//! requests, leak GPU resources, or panic — and must keep serving.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

fn loaded_platform(seed: u64) -> (Platform, fastg_cluster::FuncId) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .seed(seed),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(4)
                .resources(12.0, 1.0, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(80.0, seed + 1));
    (p, f)
}

/// A crashed pod's in-flight request is retried, not dropped: every
/// arrival is eventually completed (or still queued at the end).
#[test]
fn crashed_requests_are_retried() {
    let (mut p, f) = loaded_platform(41);
    p.run_for(SimTime::from_secs(1));
    // Kill two pods mid-load; replace them so capacity recovers.
    let pods = p.pods_of(f);
    assert!(p.kill_pod(pods[0]));
    assert!(p.kill_pod(pods[1]));
    assert_eq!(p.killed_pods(), 2);
    p.scale_to(f, 4);
    let report = p.run_for(SimTime::from_secs(5));
    let fr = &report.functions[&f];
    // Offered 80 rps with capacity ~160: everything completes except the
    // handful still in flight at the horizon.
    assert!(
        fr.arrivals - fr.completed < 8,
        "lost requests: {} arrived, {} completed",
        fr.arrivals,
        fr.completed
    );
    assert!((fr.throughput_rps - 80.0).abs() < 10.0, "rps {}", fr.throughput_rps);
}

/// Killing every pod and rescaling from zero works; memory and MPS
/// clients are fully reclaimed in between.
#[test]
fn total_crash_and_recovery() {
    let (mut p, f) = loaded_platform(42);
    p.run_for(SimTime::from_secs(1));
    for pod in p.pods_of(f) {
        p.kill_pod(pod);
    }
    // Let zombie kernels drain.
    p.run_for(SimTime::from_secs(1));
    assert_eq!(p.replicas(f), 0);
    // All device memory is back (model weights may persist only while a
    // pod references them; with zero pods everything is freed).
    assert_eq!(p.node_memory_used(0), 0, "leaked device memory");
    // Recover.
    p.scale_to(f, 3);
    let report = p.run_for(SimTime::from_secs(4));
    assert_eq!(report.functions[&f].replicas, 3);
    assert!(report.functions[&f].completed > 100);
}

/// Random kill/respawn churn: the platform stays consistent and keeps
/// serving under constant failures (one crash every ~400 ms).
#[test]
fn chaos_churn_keeps_serving() {
    let (mut p, f) = loaded_platform(43);
    let mut victim = 0usize;
    for _ in 0..20 {
        p.run_for(SimTime::from_millis(400));
        let pods = p.pods_of(f);
        if !pods.is_empty() {
            p.kill_pod(pods[victim % pods.len()]);
            victim += 1;
        }
        p.scale_to(f, 4);
    }
    let report = p.run_for(SimTime::from_secs(2));
    let fr = &report.functions[&f];
    assert_eq!(p.killed_pods(), 20);
    assert!(
        fr.arrivals - fr.completed < 10,
        "{} arrived vs {} completed",
        fr.arrivals,
        fr.completed
    );
    // Serving never collapsed: mean throughput stays near the offer.
    assert!(fr.throughput_rps > 65.0, "rps {}", fr.throughput_rps);
}

/// Determinism holds under failure injection too.
#[test]
fn chaos_is_deterministic() {
    let run = || {
        let (mut p, f) = loaded_platform(44);
        for i in 0..10 {
            p.run_for(SimTime::from_millis(300));
            let pods = p.pods_of(f);
            if !pods.is_empty() {
                p.kill_pod(pods[i % pods.len()]);
            }
            p.scale_to(f, 4);
        }
        let r = p.run_for(SimTime::from_secs(2));
        (p.events_handled(), r.functions[&f].completed, r.functions[&f].p99)
    };
    assert_eq!(run(), run());
}

/// Regression (found by `properties_platform::no_request_is_ever_lost`):
/// requests that queue while *zero* replicas exist must be picked up by
/// the replacement pods the moment they are created.
#[test]
fn backlog_drains_onto_replacement_pods() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .seed(46),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(2)
                .resources(12.0, 1.0, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::constant(30.0));
    p.run_for(SimTime::from_millis(500));
    // Wipe out every replica; arrivals keep landing in the gateway queue.
    for pod in p.pods_of(f) {
        p.kill_pod(pod);
    }
    p.run_for(SimTime::from_secs(1));
    assert_eq!(p.replicas(f), 0);
    // Replacements must drain the accumulated backlog unprompted.
    p.scale_to(f, 2);
    p.set_load(f, ArrivalProcess::constant(0.0));
    let report = p.run_for(SimTime::from_secs(4));
    let fr = &report.functions[&f];
    assert_eq!(
        fr.arrivals, fr.completed,
        "backlog stranded: {} arrived, {} completed",
        fr.arrivals, fr.completed
    );
}

// ---------------------------------------------------------------------------
// Fault plans, node-level failures, and the recovery controller.
// ---------------------------------------------------------------------------

use fastgshare::platform::{FaultKind, FaultPlan};

/// Acceptance scenario: a planned `NodeCrash` at t=30s on a two-node
/// cluster with recovery enabled. The health controller must reschedule
/// the lost replicas onto the surviving node and record a nonzero
/// time-to-recovery — and the whole thing must replay event-for-event.
#[test]
fn planned_node_crash_recovers_on_survivor() {
    let run = || {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(2)
                .policy(SharingPolicy::FaST)
                .fault_plan(
                    FaultPlan::new()
                        .at(SimTime::from_secs(30), FaultKind::NodeCrash { node_index: 0 }),
                )
                .recovery(true)
                .seed(50),
        );
        let f = p
            .deploy(
                FunctionConfig::new("f", "resnet50")
                    .replicas(2)
                    .resources(12.0, 0.5, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::poisson(30.0, 51));
        let report = p.run_for(SimTime::from_secs(45));
        (p, f, report)
    };

    let (p, f, report) = run();
    assert_eq!(p.faults_injected(), 1);
    assert!(!p.node_up(0), "crashed node should stay down");
    assert!(p.node_up(1));
    assert!(!report.nodes[0].up);
    assert!(report.nodes[1].up);
    // The Maximal-Rectangles packer consolidates both replicas onto node 0,
    // so the crash wipes out the function; recovery must rebuild it on the
    // survivor — the only node left that can hold pods.
    assert_eq!(p.replicas(f), 2, "replicas not restored after node crash");
    let fr = &report.functions[&f];
    assert!(
        !fr.time_to_recovery.is_empty(),
        "recovery controller recorded no outage repair"
    );
    for &ttr in &fr.time_to_recovery {
        assert!(ttr > SimTime::ZERO, "time-to-recovery must be nonzero");
    }
    // Service resumed: completions keep accruing well past the crash.
    assert!(
        fr.completed > 30 * 30,
        "serving collapsed after the crash: {} completed",
        fr.completed
    );

    // Event-for-event determinism with the plan active.
    let (p2, f2, report2) = run();
    assert_eq!(p.events_handled(), p2.events_handled());
    assert_eq!(report.functions[&f].completed, report2.functions[&f2].completed);
    assert_eq!(report.functions[&f].p99, report2.functions[&f2].p99);
    assert_eq!(
        report.functions[&f].time_to_recovery,
        report2.functions[&f2].time_to_recovery
    );
}

/// A degraded node stretches kernels by the plan's factor; recovery
/// restores full clock. Latency while degraded must be visibly worse
/// than an undegraded control run.
#[test]
fn degrade_and_recover_stretch_latency() {
    let fingerprint = |plan: FaultPlan| {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(1)
                .policy(SharingPolicy::FaST)
                .fault_plan(plan)
                .seed(52),
        );
        let f = p
            .deploy(
                FunctionConfig::new("f", "resnet50")
                    .replicas(2)
                    .resources(12.0, 1.0, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::poisson(40.0, 53));
        let report = p.run_for(SimTime::from_secs(10));
        let fr = &report.functions[&f];
        (fr.completed, fr.p99, fr.mean_latency)
    };
    let degraded = FaultPlan::new()
        .at(
            SimTime::from_secs(2),
            FaultKind::NodeDegrade {
                node_index: 0,
                factor: 3.0,
            },
        )
        .at(SimTime::from_secs(8), FaultKind::NodeRecover { node_index: 0 });
    let (slow_done, slow_p99, slow_mean) = fingerprint(degraded);
    let (fast_done, _fast_p99, fast_mean) = fingerprint(FaultPlan::new());
    assert!(
        slow_mean > fast_mean,
        "3x degrade should raise mean latency: {slow_mean} vs {fast_mean}"
    );
    assert!(slow_p99 > SimTime::ZERO);
    // Still serving throughout (slower, not dead).
    assert!(slow_done > fast_done / 2, "{slow_done} vs {fast_done}");
}

/// Request timeouts + a bounded retry budget shed excess work as
/// `dropped` instead of queueing it forever: with capacity gone and a
/// tight timeout, arrivals are accounted for as completed, dropped,
/// queued, or in flight — never silently lost.
#[test]
fn timeouts_shed_requests_when_capacity_dies() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(2)
            .policy(SharingPolicy::FaST)
            .fault_plan(
                FaultPlan::new()
                    .at(SimTime::from_secs(2), FaultKind::NodeCrash { node_index: 0 })
                    .at(SimTime::from_secs(3), FaultKind::NodeCrash { node_index: 1 }),
            )
            .request_timeout_factor(4.0)
            .retry_budget(2)
            .seed(54),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(2)
                .resources(12.0, 0.5, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(50.0, 55));
    let report = p.run_for(SimTime::from_secs(10));
    let fr = &report.functions[&f];
    assert!(!p.node_up(0) && !p.node_up(1));
    assert!(
        fr.dropped > 0,
        "with the whole cluster dead, timed-out requests must be shed"
    );
    let accounted =
        fr.completed + fr.dropped + p.queued_requests(f) as u64 + p.in_flight_requests() as u64;
    assert_eq!(
        fr.arrivals, accounted,
        "request conservation violated: {} arrived, {} accounted",
        fr.arrivals, accounted
    );
}

/// Seeded random chaos plans: whatever the mix of pod crashes, node
/// crashes and degrades, the conservation invariant holds, surviving
/// nodes stay consistent, and the run replays deterministically.
#[test]
fn random_chaos_plans_conserve_requests() {
    for seed in [60u64, 61, 62, 63] {
        let run = |seed: u64| {
            let mut p = Platform::new(
                PlatformConfig::default()
                    .nodes(3)
                    .policy(SharingPolicy::FaST)
                    .fault_plan(FaultPlan::random(seed, 12, SimTime::from_secs(8)))
                    .recovery(true)
                    .request_timeout_factor(6.0)
                    .retry_budget(3)
                    .seed(seed),
            );
            let f = p
                .deploy(
                    FunctionConfig::new("f", "resnet50")
                        .replicas(3)
                        .resources(12.0, 0.5, 1.0),
                )
                .unwrap();
            p.set_load(f, ArrivalProcess::poisson(40.0, seed + 1));
            let report = p.run_for(SimTime::from_secs(12));
            (p, f, report)
        };
        let (p, f, report) = run(seed);
        assert_eq!(p.faults_injected(), 12, "seed {seed}: plan not fully injected");
        let fr = &report.functions[&f];
        let accounted = fr.completed
            + fr.dropped
            + p.queued_requests(f) as u64
            + p.in_flight_requests() as u64;
        assert_eq!(
            fr.arrivals, accounted,
            "seed {seed}: conservation violated ({} arrived, {} accounted)",
            fr.arrivals, accounted
        );
        // Surviving nodes stay structurally sound: free SMs never exceed
        // the device total, and dead nodes report down.
        for i in 0..3 {
            if p.node_up(i) {
                assert!(report.nodes[i].up);
            } else {
                assert!(!report.nodes[i].up);
                assert_eq!(p.node_memory_used(i), 0, "seed {seed}: dead node holds memory");
            }
        }
        // Determinism: replaying the same chaos gives the same trace.
        let (p2, f2, report2) = run(seed);
        assert_eq!(p.events_handled(), p2.events_handled(), "seed {seed} diverged");
        assert_eq!(
            report.functions[&f].completed,
            report2.functions[&f2].completed
        );
        assert_eq!(fr.dropped, report2.functions[&f2].dropped);
    }
}

/// Pod-crash faults from a plan behave like direct `kill_pod` calls:
/// replicas drop, and with recovery on the controller restores them.
#[test]
fn planned_pod_crash_is_healed() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .fault_plan(
                FaultPlan::new()
                    .at(SimTime::from_secs(1), FaultKind::PodCrash { func_index: 0 })
                    .at(SimTime::from_secs(2), FaultKind::PodCrash { func_index: 0 }),
            )
            .recovery(true)
            .seed(56),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(3)
                .resources(12.0, 0.5, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(20.0, 57));
    let report = p.run_for(SimTime::from_secs(6));
    assert_eq!(p.faults_injected(), 2);
    assert_eq!(p.killed_pods(), 2);
    assert_eq!(p.replicas(f), 3, "recovery should restore the desired count");
    assert!(!report.functions[&f].time_to_recovery.is_empty());
}

/// With recovery *off*, a planned crash leaves the function degraded —
/// the controller must not act unless enabled.
#[test]
fn no_recovery_without_opt_in() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .fault_plan(
                FaultPlan::new().at(SimTime::from_secs(1), FaultKind::PodCrash { func_index: 0 }),
            )
            .seed(58),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(2)
                .resources(12.0, 0.5, 1.0),
        )
        .unwrap();
    let report = p.run_for(SimTime::from_secs(4));
    assert_eq!(p.faults_injected(), 1);
    assert_eq!(p.replicas(f), 1, "nothing should heal the lost replica");
    assert!(report.functions[&f].time_to_recovery.is_empty());
}

/// An empty or absent plan changes nothing: the event trace with chaos
/// features left at their defaults is identical to the seed behaviour.
#[test]
fn default_config_injects_nothing() {
    let (mut p, f) = loaded_platform(59);
    let report = p.run_for(SimTime::from_secs(3));
    assert_eq!(p.faults_injected(), 0);
    assert_eq!(report.faults_injected, 0);
    assert_eq!(report.functions[&f].dropped, 0);
    assert!(report.functions[&f].time_to_recovery.is_empty());
    assert!(report.nodes.iter().all(|n| n.up));
}

// ---------------------------------------------------------------------------
// Retry-budget edge cases: budget exhaustion at the crash instant, retries
// racing gateway timeouts, and `dropped` never double-counting.
// ---------------------------------------------------------------------------

/// A zero retry budget exhausts exactly at the pod crash: the in-flight
/// request is dropped at the crash instant instead of requeueing, and the
/// accounting identity still balances.
#[test]
fn zero_retry_budget_drops_at_the_crash_instant() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .retry_budget(0)
            .seed(70),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(1)
                .resources(50.0, 1.0, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::constant(30.0));
    p.run_for(SimTime::from_millis(500));
    let before = p.dropped_requests(f);
    // The single replica is saturated at 30 rps, so it has a request in
    // flight; killing it must shed that request immediately (budget 0).
    let pods = p.pods_of(f);
    assert!(p.kill_pod(pods[0]));
    assert_eq!(
        p.dropped_requests(f),
        before + 1,
        "budget 0 must drop the crash-lost request at the crash"
    );
    // Quiesce and check conservation end to end.
    p.set_load(f, ArrivalProcess::constant(0.0));
    p.scale_to(f, 1);
    let report = p.run_for(SimTime::from_secs(3));
    let fr = &report.functions[&f];
    let accounted =
        fr.completed + fr.dropped + p.queued_requests(f) as u64 + p.in_flight_requests() as u64;
    assert_eq!(fr.arrivals, accounted, "conservation violated");
}

/// A crash-requeued request racing its own gateway timeout: with capacity
/// gone, the retried request sits queued until the timeout fires and
/// sheds it. The drop must land exactly once whichever event wins.
#[test]
fn retry_races_gateway_timeout_without_losing_requests() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .request_timeout_factor(2.0) // 400 ms on a 200 ms SLO
            .retry_budget(3)
            .seed(71),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(2)
                .resources(50.0, 0.5, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(40.0, 72));
    p.run_for(SimTime::from_secs(1));
    // Kill all capacity: in-flight requests requeue (budget allows) and
    // then race their pending RequestTimeout events in the empty queue.
    for pod in p.pods_of(f) {
        p.kill_pod(pod);
    }
    p.run_for(SimTime::from_secs(2));
    assert_eq!(p.replicas(f), 0);
    let report = p.report();
    let fr = &report.functions[&f];
    assert!(fr.dropped > 0, "timeouts must shed the stranded retries");
    // Every arrival is accounted exactly once.
    let accounted =
        fr.completed + fr.dropped + p.queued_requests(f) as u64 + p.in_flight_requests() as u64;
    assert_eq!(
        fr.arrivals, accounted,
        "retry/timeout race lost or double-counted requests"
    );
    // The whole race replays deterministically.
    let rerun = || {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(1)
                .policy(SharingPolicy::FaST)
                .request_timeout_factor(2.0)
                .retry_budget(3)
                .seed(71),
        );
        let f = p
            .deploy(
                FunctionConfig::new("f", "resnet50")
                    .replicas(2)
                    .resources(50.0, 0.5, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::poisson(40.0, 72));
        p.run_for(SimTime::from_secs(1));
        for pod in p.pods_of(f) {
            p.kill_pod(pod);
        }
        p.run_for(SimTime::from_secs(2));
        (p.events_handled(), p.dropped_requests(f))
    };
    assert_eq!(rerun(), rerun());
}

/// A request can be *both* over its retry budget (dropped at a crash) and
/// past its queueing deadline (a timeout already scheduled): the later
/// timeout must find nothing to cancel and `dropped` counts it once.
#[test]
fn over_budget_and_timed_out_requests_count_once() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(2)
            .policy(SharingPolicy::FaST)
            .request_timeout_factor(10.0) // 2 s on a 200 ms SLO
            .retry_budget(0) // crash losses drop instantly, timeout pending
            .fault_plan(
                FaultPlan::new()
                    .at(SimTime::from_secs(1), FaultKind::NodeCrash { node_index: 0 })
                    .at(
                        SimTime::from_millis(1200),
                        FaultKind::NodeCrash { node_index: 1 },
                    ),
            )
            .seed(73),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .slo_ms(200)
                .replicas(2)
                .resources(50.0, 0.5, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(60.0, 74));
    // Run long past every pending timeout: requests dropped over budget at
    // the crashes still have RequestTimeout events scheduled, and queued
    // survivors time out normally. Any double-count would break the
    // conservation identity below.
    let report = p.run_for(SimTime::from_secs(6));
    let fr = &report.functions[&f];
    assert!(!p.node_up(0) && !p.node_up(1));
    assert!(fr.dropped > 0);
    assert!(
        fr.dropped <= fr.arrivals,
        "dropped {} exceeds arrivals {} — double counting",
        fr.dropped,
        fr.arrivals
    );
    let accounted =
        fr.completed + fr.dropped + p.queued_requests(f) as u64 + p.in_flight_requests() as u64;
    assert_eq!(
        fr.arrivals, accounted,
        "a request was counted both over-budget and timed-out"
    );
}

/// Killing an idle pod (no request in flight) tears down immediately.
#[test]
fn idle_pod_kill_is_immediate() {
    let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(45));
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(2)
                .resources(12.0, 1.0, 1.0),
        )
        .unwrap();
    let pods = p.pods_of(f);
    assert!(p.kill_pod(pods[0]));
    assert_eq!(p.replicas(f), 1);
    // Double-kill is a no-op.
    assert!(!p.kill_pod(pods[0]));
    assert_eq!(p.killed_pods(), 1);
}
