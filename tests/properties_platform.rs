//! Model-based property testing of the whole platform: random operation
//! sequences (deploy, scale, kill, run, load changes) must never violate
//! the global invariants — request conservation, memory conservation,
//! replica consistency, determinism.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{
    FaultKind, FaultPlan, FunctionConfig, Platform, PlatformConfig, TieBreak,
};
use proptest::prelude::*;

/// One step of the operation alphabet.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    Run(u16),
    ScaleResnet(u8),
    ScaleRnnt(u8),
    KillOne(u8),
    LoadResnet(u8),
}

fn arb_op() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        (50u16..800).prop_map(OpKind::Run),
        (1u8..6).prop_map(OpKind::ScaleResnet),
        (1u8..4).prop_map(OpKind::ScaleRnnt),
        any::<u8>().prop_map(OpKind::KillOne),
        (0u8..120).prop_map(OpKind::LoadResnet),
    ]
}

fn drive(ops: &[OpKind], seed: u64) -> (u64, Vec<(u64, u64)>, u64) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(2)
            .policy(SharingPolicy::FaST)
            .oversubscribe(true)
            .seed(seed),
    );
    let resnet = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .replicas(2)
                .resources(12.0, 0.5, 1.0),
        )
        .unwrap();
    let rnnt = p
        .deploy(
            FunctionConfig::new("rnnt", "rnnt")
                .replicas(1)
                .resources(24.0, 0.5, 1.0),
        )
        .unwrap();
    p.set_load(resnet, ArrivalProcess::poisson(40.0, seed));
    p.set_load(rnnt, ArrivalProcess::poisson(5.0, seed + 1));
    for &op in ops {
        match op {
            OpKind::Run(ms) => {
                p.run_for(SimTime::from_millis(ms as u64));
            }
            OpKind::ScaleResnet(n) => p.scale_to(resnet, n as usize),
            OpKind::ScaleRnnt(n) => p.scale_to(rnnt, n as usize),
            OpKind::KillOne(pick) => {
                let pods = p.pods_of(resnet);
                if !pods.is_empty() {
                    p.kill_pod(pods[pick as usize % pods.len()]);
                }
            }
            OpKind::LoadResnet(r) => {
                p.set_load(resnet, ArrivalProcess::poisson(r as f64, seed + 2));
            }
        }
    }
    // Quiesce: stop load, restore capacity, let everything drain.
    p.set_load(resnet, ArrivalProcess::constant(0.0));
    p.set_load(rnnt, ArrivalProcess::constant(0.0));
    p.scale_to(resnet, 2);
    p.scale_to(rnnt, 1);
    let report = p.run_for(SimTime::from_secs(8));
    let per_func: Vec<(u64, u64)> = report
        .functions
        .values()
        .map(|f| (f.arrivals, f.completed))
        .collect();
    (p.events_handled(), per_func, p.killed_pods())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: after quiescing, every request that ever arrived has
    /// completed — scaling churn and crashes lose nothing.
    #[test]
    fn no_request_is_ever_lost(ops in prop::collection::vec(arb_op(), 1..16)) {
        let (_, per_func, _) = drive(&ops, 7);
        for (arrived, completed) in per_func {
            prop_assert_eq!(
                arrived, completed,
                "requests lost after quiesce: {} arrived, {} completed",
                arrived, completed
            );
        }
    }

    /// Determinism: the same op sequence replays to the same fingerprint.
    #[test]
    fn op_sequences_are_deterministic(ops in prop::collection::vec(arb_op(), 1..12)) {
        prop_assert_eq!(drive(&ops, 11), drive(&ops, 11));
    }
}

/// A random platform grid for fast-forward parity: node count, partition
/// size, replica count, load and mid-run perturbations all drawn at
/// random, so the coalescing layer is exercised across capped and
/// over-subscribed regimes, invalidation paths included.
#[derive(Debug, Clone, Copy)]
struct FfGrid {
    nodes: usize,
    replicas: usize,
    /// Index into the partition menu (12 %–50 %): small values keep the
    /// device in the capped regime, large ones push it out of it.
    sm_idx: usize,
    rate: f64,
    seed: u64,
    /// Kill one pod at the 1 s mark (mid-burst invalidation).
    kill: bool,
    /// Repartition the function at the 1 s mark (regime change).
    repartition: bool,
    /// Inject the clock-degrade/node-crash chaos plan.
    chaos: bool,
}

const SM_MENU: [f64; 4] = [12.0, 24.0, 25.0, 50.0];

fn arb_ff_grid() -> impl Strategy<Value = FfGrid> {
    (
        1usize..3,
        1usize..4,
        0usize..SM_MENU.len(),
        5u32..70,
        0u64..1000,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(nodes, replicas, sm_idx, rate, seed, kill, repartition, chaos)| FfGrid {
                nodes,
                replicas,
                sm_idx,
                rate: f64::from(rate),
                seed,
                kill,
                repartition,
                chaos,
            },
        )
}

/// Runs one grid point with fast-forward forced on or off (and a chosen
/// same-instant tie-break order) and returns the canonical report text
/// (every counter and float bit pattern) plus how many bursts were
/// coalesced.
fn ff_grid_run(g: FfGrid, fastforward: bool, tiebreak: TieBreak) -> (String, u64) {
    let mut cfg = PlatformConfig::default()
        .nodes(g.nodes)
        .policy(SharingPolicy::FaST)
        .oversubscribe(true)
        .seed(g.seed)
        .fastforward(fastforward)
        .tiebreak(tiebreak);
    if g.chaos {
        cfg = cfg.fault_plan(
            FaultPlan::new()
                .at(
                    SimTime::from_millis(700),
                    FaultKind::NodeDegrade {
                        node_index: 0,
                        factor: 1.5,
                    },
                )
                .at(
                    SimTime::from_millis(1400),
                    FaultKind::NodeRecover { node_index: 0 },
                ),
        );
    }
    let mut p = Platform::new(cfg);
    let f = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .replicas(g.replicas)
                .resources(SM_MENU[g.sm_idx], 0.5, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(g.rate, g.seed.wrapping_add(1)));
    p.run_for(SimTime::from_secs(1));
    if g.kill {
        if let Some(&victim) = p.pods_of(f).first() {
            p.kill_pod(victim);
        }
    }
    if g.repartition {
        let next = SM_MENU[(g.sm_idx + 1) % SM_MENU.len()];
        let _ = p.reconfigure(f, next, 0.5, 1.0);
    }
    let report = p.run_for(SimTime::from_millis(1500));
    (report.canonical_text(), p.ff_bursts())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fast-forward digest parity over random grids: whatever the regime,
    /// load or mid-run perturbation, coalescing must never change a byte
    /// of the report.
    #[test]
    fn fastforward_parity_on_random_grids(g in arb_ff_grid()) {
        let (on, _) = ff_grid_run(g, true, TieBreak::Fifo);
        let (off, coalesced) = ff_grid_run(g, false, TieBreak::Fifo);
        prop_assert_eq!(coalesced, 0, "disabled fast-forward must not coalesce");
        prop_assert_eq!(on, off, "fast-forward parity broke on {:?}", g);
    }

    /// Tie-break independence over the same random grids: a seeded
    /// shuffle of same-instant delivery order must reproduce the FIFO
    /// report byte-for-byte — kills, repartitions and chaos included,
    /// fast-forward on or off. Any difference is a delivery-order race
    /// (see `race_detector` for the delta-debugging version).
    #[test]
    fn tiebreak_parity_on_random_grids(
        g in arb_ff_grid(),
        ff in any::<bool>(),
        shuffle_seed in 1u64..1_000_000,
    ) {
        let (fifo, _) = ff_grid_run(g, ff, TieBreak::Fifo);
        let (shuffled, _) = ff_grid_run(g, ff, TieBreak::SeededShuffle(shuffle_seed));
        prop_assert_eq!(fifo, shuffled, "tie-break shuffle changed the report on {:?}", g);
    }
}

/// A random fleet grid for cluster-level fast-forward parity: a handful
/// of single-replica, constant-rate functions — one pod per node when
/// placement allows, the steady regime's habitat — with mid-run kills,
/// degrades and reconfigurations to exercise every exit path.
#[derive(Debug, Clone, Copy)]
struct FleetGrid {
    nodes: usize,
    rate: u32,
    seed: u64,
    /// Kill the first function's pod at the 2 s mark.
    kill: bool,
    /// Degrade node 0 mid-run, recover it a second later.
    degrade: bool,
    /// Reconfigure the last function's partition at the 2 s mark.
    reconfig: bool,
}

fn arb_fleet_grid() -> impl Strategy<Value = FleetGrid> {
    (
        2usize..5,
        5u32..45,
        0u64..1000,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(nodes, rate, seed, kill, degrade, reconfig)| FleetGrid {
            nodes,
            rate,
            seed,
            kill,
            degrade,
            reconfig,
        })
}

const FLEET_MODELS: [&str; 4] = ["resnet50", "bert_base", "rnnt", "resnext101"];

/// Runs one fleet grid point with cluster fast-forward forced on or off
/// and returns the canonical report text plus the steady cycles credited
/// analytically.
fn fleet_grid_run(g: FleetGrid, cluster_ff: bool) -> (String, u64) {
    let mut cfg = PlatformConfig::default()
        .nodes(g.nodes)
        .policy(SharingPolicy::FaST)
        .oversubscribe(true)
        .seed(g.seed)
        .fastforward(true)
        .cluster_fastforward(cluster_ff);
    if g.degrade {
        cfg = cfg.fault_plan(
            FaultPlan::new()
                .at(
                    SimTime::from_millis(1500),
                    FaultKind::NodeDegrade {
                        node_index: 0,
                        factor: 1.5,
                    },
                )
                .at(
                    SimTime::from_millis(2500),
                    FaultKind::NodeRecover { node_index: 0 },
                ),
        );
    }
    let mut p = Platform::new(cfg);
    let mut funcs = Vec::new();
    for i in 0..g.nodes {
        let f = p
            .deploy(
                FunctionConfig::new(&format!("f{i}"), FLEET_MODELS[i % FLEET_MODELS.len()])
                    .replicas(1)
                    .resources(100.0, 1.0, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::constant(f64::from(g.rate) + i as f64));
        funcs.push(f);
    }
    p.run_for(SimTime::from_secs(2));
    if g.kill {
        if let Some(&victim) = p.pods_of(funcs[0]).first() {
            p.kill_pod(victim);
        }
    }
    if g.reconfig {
        let _ = p.reconfigure(funcs[g.nodes - 1], 50.0, 1.0, 1.0);
    }
    let report = p.run_for(SimTime::from_secs(3));
    (report.canonical_text(), p.ff_cluster_cycles())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cluster fast-forward digest parity over random fleets: crediting
    /// whole request cycles in closed form must never change a byte of
    /// the report — kills, degrades and reconfigurations included.
    #[test]
    fn cluster_fastforward_parity_on_random_fleets(g in arb_fleet_grid()) {
        let (on, _) = fleet_grid_run(g, true);
        let (off, off_cycles) = fleet_grid_run(g, false);
        prop_assert_eq!(off_cycles, 0, "disabled cluster fast-forward must not credit cycles");
        prop_assert_eq!(on, off, "cluster fast-forward parity broke on {:?}", g);
    }
}

/// The steady regime actually engages on a quiet fleet (a guard against
/// the eligibility gates silently never passing).
#[test]
fn cluster_fastforward_engages_on_steady_fleet() {
    let g = FleetGrid {
        nodes: 2,
        rate: 20,
        seed: 42,
        kill: false,
        degrade: false,
        reconfig: false,
    };
    let (_, cycles) = fleet_grid_run(g, true);
    assert!(cycles > 0, "steady regime never entered on a quiet fleet");
}

/// Memory conservation after a full teardown, checked once with a fixed
/// churn (cheaper than a proptest but the strongest leak check).
#[test]
fn memory_fully_reclaimed_after_teardown() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(2)
            .oversubscribe(true)
            .seed(3),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "vit_huge")
                .replicas(2)
                .resources(50.0, 0.5, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(3.0, 4));
    for i in 0..6 {
        p.run_for(SimTime::from_millis(700));
        let pods = p.pods_of(f);
        if !pods.is_empty() {
            p.kill_pod(pods[i % pods.len()]);
        }
        p.scale_to(f, 2 + (i % 2));
    }
    p.set_load(f, ArrivalProcess::constant(0.0));
    p.scale_to(f, 0);
    p.run_for(SimTime::from_secs(5));
    assert_eq!(p.replicas(f), 0);
    assert_eq!(p.node_memory_used(0), 0, "node 0 leaked");
    assert_eq!(p.node_memory_used(1), 0, "node 1 leaked");
}
