//! FaST-Profiler end-to-end: measured curves have the Figure 8 shape and
//! feed Algorithm 1 correctly.

use fastg_des::SimTime;
use fastgshare::profiler::{ConfigServer, Experiment, ProfileDb, ProfileKey, SamplePlan};
use fastgshare::scheduler::{heuristic_scale, ScaleAction};

fn grid(spatial: Vec<f64>, temporal: Vec<f64>) -> ConfigServer {
    ConfigServer::new(SamplePlan::Grid { spatial, temporal })
}

/// Temporal proportionality across the full quota range (Figure 8's
/// x-axis behaviour), measured, not analytic.
#[test]
fn measured_temporal_proportionality() {
    let mut db = ProfileDb::new();
    Experiment::new("resnet50", grid(vec![24.0], vec![0.2, 0.4, 0.6, 0.8, 1.0]))
        .trial_duration(SimTime::from_secs(2))
        .run(&mut db)
        .unwrap();
    let rps_at = |q: f64| db.get("resnet50", ProfileKey::new(24.0, q)).unwrap().rps;
    let base = rps_at(0.2);
    for (q, mult) in [(0.4, 2.0), (0.6, 3.0), (0.8, 4.0)] {
        let ratio = rps_at(q) / base;
        assert!(
            (ratio - mult).abs() < mult * 0.15,
            "quota {q}: ratio {ratio:.2} expected ~{mult}"
        );
    }
    // 100 % quota hits the latency-bound regime; still the largest.
    assert!(rps_at(1.0) >= rps_at(0.8) * 0.99);
}

/// Spatial saturation for a large model happens later than for a small
/// one (§5.2: "larger models require more SM partitions to reach
/// saturation").
#[test]
fn measured_saturation_scales_with_model_size() {
    let spatial = vec![12.0, 24.0, 50.0, 80.0];
    let mut db = ProfileDb::new();
    for model in ["resnet50", "vit_huge"] {
        Experiment::new(model, grid(spatial.clone(), vec![1.0]))
            .trial_duration(SimTime::from_secs(2))
            .run(&mut db)
            .unwrap();
    }
    let gain = |model: &str, lo: f64, hi: f64| {
        let a = db.get(model, ProfileKey::new(lo, 1.0)).unwrap().rps;
        let b = db.get(model, ProfileKey::new(hi, 1.0)).unwrap().rps;
        b / a
    };
    // ResNet gains nothing from 24 → 50 %; ViT-Huge still gains a lot.
    assert!(gain("resnet50", 24.0, 50.0) < 1.1);
    assert!(gain("vit_huge", 24.0, 50.0) > 1.5);
    // ViT keeps gaining up to 80 %.
    assert!(gain("vit_huge", 50.0, 80.0) > 1.2);
}

/// Profiled utilization rises along the temporal axis; SM occupancy rises
/// along the spatial axis.
#[test]
fn measured_gpu_metrics_follow_allocation() {
    let mut db = ProfileDb::new();
    Experiment::new("resnet50", grid(vec![12.0, 50.0], vec![0.4, 1.0]))
        .trial_duration(SimTime::from_secs(2))
        .run(&mut db)
        .unwrap();
    let rec = |sm: f64, q: f64| *db.get("resnet50", ProfileKey::new(sm, q)).unwrap();
    assert!(
        rec(12.0, 1.0).utilization > rec(12.0, 0.4).utilization,
        "more quota, more busy time"
    );
    assert!(
        rec(12.0, 1.0).sm_occupancy < 0.2,
        "small partition keeps occupancy low"
    );
}

/// The measured profile, fed through Algorithm 1, prefers the highest-RPR
/// configuration — which for ResNet is a small partition, not a big one.
#[test]
fn profile_feeds_heuristic_scaler() {
    let mut db = ProfileDb::new();
    Experiment::new(
        "resnet50",
        grid(vec![12.0, 24.0, 50.0], vec![0.4, 1.0]),
    )
    .trial_duration(SimTime::from_secs(2))
    .run(&mut db)
    .unwrap();
    let points = db.config_points("resnet50");
    assert_eq!(points.len(), 6);
    let actions = heuristic_scale(100.0, &points, &[]);
    assert!(!actions.is_empty());
    // Every scale-up uses a sensible configuration, and the bulk pods use
    // a small partition (high RPR).
    let ScaleAction::Up(first) = actions[0] else {
        panic!("expected Up");
    };
    assert!(
        first.sm <= 24.0,
        "bulk config should be an efficient small partition, got {} %",
        first.sm
    );
    let capacity: f64 = actions
        .iter()
        .map(|a| match a {
            ScaleAction::Up(p) => p.rps,
            _ => 0.0,
        })
        .sum();
    assert!(capacity >= 100.0);
}

/// The database round-trips through JSON with measured values intact.
#[test]
fn measured_db_round_trips() {
    let mut db = ProfileDb::new();
    Experiment::new("rnnt", grid(vec![24.0], vec![1.0]))
        .trial_duration(SimTime::from_secs(2))
        .run(&mut db)
        .unwrap();
    let json = db.to_json();
    let back = ProfileDb::from_json(&json).unwrap();
    let a = db.get("rnnt", ProfileKey::new(24.0, 1.0)).unwrap();
    let b = back.get("rnnt", ProfileKey::new(24.0, 1.0)).unwrap();
    assert_eq!(a, b);
    assert!(a.rps > 5.0, "RNNT at full quota should serve >5 rps: {}", a.rps);
}
