//! Memory regression tests for checkpoint-suspended trials: suspending a
//! trial and dropping its live platform must actually return the
//! simulation's memory (arenas, event queue, GPU state), leaving only
//! the compact snapshot bytes resident.
//!
//! Measured with a counting global allocator local to this test binary,
//! so the numbers are exact byte accounting, not RSS sampling noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use fastg_des::SimTime;
use fastgshare::profiler::{ConfigServer, Experiment, SamplePlan};

/// A pass-through allocator that tracks live (allocated − freed) bytes.
struct Counting;

static LIVE: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            LIVE.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE.fetch_add(new_size, Ordering::Relaxed);
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

fn experiment() -> Experiment {
    Experiment::new(
        "resnet50",
        ConfigServer::new(SamplePlan::Grid {
            spatial: vec![],
            temporal: vec![],
        }),
    )
}

/// Dropping an eliminated trial's live platform after suspension frees
/// the bulk of its memory: what stays resident is roughly the snapshot
/// bytes, not the simulation.
#[test]
fn eliminated_trial_arenas_are_dropped() {
    let e = experiment();
    let before = live_bytes();

    // A warmed-up live trial holds the full simulation.
    let mut run = e.start_trial(24.0, 0.4).unwrap();
    run.extend_to(SimTime::from_millis(500));
    let with_live = live_bytes().saturating_sub(before);

    // Suspend → drop: the "eliminated between rounds" state.
    let suspended = run.suspend();
    drop(run);
    let with_snapshot = live_bytes().saturating_sub(before);

    assert!(
        with_live > 0,
        "live trial should allocate (accounting broken?)"
    );
    // The snapshot footprint must be a small fraction of the live
    // simulation — if this regresses, losers are holding arenas again.
    assert!(
        with_snapshot < with_live / 2,
        "suspended trial retains {with_snapshot} of {with_live} live bytes"
    );
    // And the retained bytes are explained by the snapshot itself plus
    // a small constant, not by leaked simulation state.
    assert!(
        with_snapshot < suspended.size_bytes() + 64 * 1024,
        "retained {with_snapshot} bytes vs snapshot of {}",
        suspended.size_bytes()
    );
    drop(suspended);
}

/// The full suspend → resume → measure cycle leaks nothing between
/// rounds: after dropping everything, live bytes return to the baseline.
#[test]
fn suspend_resume_cycle_is_leak_free() {
    let e = experiment();
    // Warm any lazy one-time allocations (zoo profiles, thread-locals)
    // so the steady-state measurement is clean.
    {
        let mut run = e.start_trial(12.0, 0.4).unwrap();
        run.extend_to(SimTime::from_millis(200));
        let snap = run.suspend();
        drop(run);
        drop(snap.resume().unwrap());
    }
    let baseline = live_bytes();
    for _ in 0..3 {
        let mut run = e.start_trial(12.0, 0.4).unwrap();
        run.extend_to(SimTime::from_millis(200));
        let snap = run.suspend();
        drop(run);
        let mut resumed = snap.resume().unwrap();
        resumed.extend_to(SimTime::from_millis(400));
        drop(resumed);
        drop(snap);
    }
    let after = live_bytes();
    // Allow slack for allocator-internal caches and the test harness.
    assert!(
        after.saturating_sub(baseline) < 256 * 1024,
        "search rounds leak: baseline {baseline}, after {after}"
    );
}
