//! MIG + MPS end to end (paper §2.3): FaST-GShare runs unchanged on the
//! instances of a MIG-sliced A100, with MPS clients sharing each
//! instance.

use fastg_des::SimTime;
use fastg_gpu::{GpuSpec, MigConfig, MigProfile};
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

/// Two 3g.20gb instances as two FaST-GShare nodes, each multiplexing two
/// ResNet pods through MPS partitions.
#[test]
fn fast_gshare_on_mig_instances() {
    let mig = MigConfig::new(
        GpuSpec::a100(),
        vec![MigProfile::P3g, MigProfile::P3g],
    )
    .unwrap();
    let mut p = Platform::new(
        PlatformConfig::default()
            .gpus(mig.instances())
            .policy(SharingPolicy::FaST)
            .warmup(SimTime::from_secs(1))
            .seed(19),
    );
    let f = p
        .deploy(
            FunctionConfig::new("resnet-mig", "resnet50")
                .replicas(4)
                .resources(40.0, 1.0, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(100.0, 20));
    let report = p.run_for(SimTime::from_secs(5));
    let fr = &report.functions[&f];
    // Each 45-SM instance grants ~18 SMs per pod (40 % partition), close
    // to ResNet's 19-block saturation: throughput keeps up with offer.
    assert!(
        (fr.throughput_rps - 100.0).abs() < 12.0,
        "throughput {}",
        fr.throughput_rps
    );
    assert_eq!(report.nodes.len(), 2);
    assert!(report.nodes.iter().all(|n| n.kernels > 0), "both instances used");
    assert!(report.nodes[0].gpu.contains("MIG 3g.20gb"), "{}", report.nodes[0].gpu);
}

/// A seven-way 1g.5gb split: each tiny instance holds exactly one small
/// model copy; memory capacity per instance is enforced.
#[test]
fn seven_way_mig_capacity() {
    let mig = MigConfig::seven_way(GpuSpec::a100()).unwrap();
    let mut p = Platform::new(
        PlatformConfig::default()
            .gpus(mig.instances())
            .policy(SharingPolicy::FaST)
            .model_sharing(false)
            .seed(21),
    );
    // 5 GiB per instance; a ResNet pod needs ~1.5 GiB: three fit, the
    // fourth lands on the next instance.
    let f = p
        .deploy(
            FunctionConfig::new("r", "resnet50")
                .replicas(4)
                .resources(100.0, 0.25, 0.25),
        )
        .unwrap();
    assert_eq!(p.replicas(f), 4);
    // ViT-Huge (4.6 GiB) fits an instance; two replicas must spread.
    let v = p
        .deploy(
            FunctionConfig::new("v", "vit_huge")
                .replicas(2)
                .resources(100.0, 0.5, 0.5),
        )
        .unwrap();
    assert_eq!(p.replicas(v), 2);
    let report = p.report();
    let used: Vec<u64> = report.nodes.iter().map(|n| n.memory_used).collect();
    let max_instance = 5 * 1024 * 1024 * 1024u64;
    assert!(used.iter().all(|&u| u <= max_instance));
}
