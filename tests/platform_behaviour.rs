//! Behavioural coverage of the platform engine beyond the figure
//! scenarios: elasticity, overload, cross-function weight sharing,
//! exclusive clusters, reporting.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{csv, FunctionConfig, Platform, PlatformConfig};

/// Elastic quota: a pod guaranteed only 20 % of the window uses the idle
/// GPU up to its 100 % limit when alone, but keeps at least its
/// guarantee under contention.
#[test]
fn elastic_quota_uses_idle_gpu() {
    // Alone: throughput well beyond the 20 % guarantee.
    let mut p = Platform::new(PlatformConfig::default().nodes(1).warmup(SimTime::from_secs(1)).seed(1));
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .resources(100.0, 0.2, 1.0)
                .saturating(),
        )
        .unwrap();
    let alone = p.run_for(SimTime::from_secs(4)).functions[&f].throughput_rps;
    assert!(alone > 55.0, "elastic pod should exceed its guarantee: {alone}");

    // Against a full-quota competitor on the same SMs: still gets at
    // least ~20 % worth (0.2 / 10ms device = 20 rps).
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .oversubscribe(true)
            .warmup(SimTime::from_secs(1))
            .seed(1),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .resources(100.0, 0.2, 1.0)
                .saturating(),
        )
        .unwrap();
    let _rival = p
        .deploy(
            FunctionConfig::new("rival", "resnet50")
                .resources(100.0, 0.8, 1.0)
                .saturating(),
        )
        .unwrap();
    let contended = p.run_for(SimTime::from_secs(4)).functions[&f].throughput_rps;
    assert!(
        contended >= 17.0,
        "guarantee violated under contention: {contended} rps"
    );
    assert!(contended < alone, "contention must cost something");
}

/// Overload: offered load beyond capacity — the gateway queue grows, the
/// tail explodes, but accounting stays exact and throughput pins at
/// capacity.
#[test]
fn overload_pins_at_capacity_without_losing_requests() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .warmup(SimTime::from_secs(1))
            .seed(2),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(1)
                .resources(12.0, 1.0, 1.0),
        )
        .unwrap();
    // Capacity ~41 rps at 12 %; offer 80.
    p.set_load(f, ArrivalProcess::constant(80.0));
    let report = p.run_for(SimTime::from_secs(5));
    let fr = &report.functions[&f];
    assert!(
        (fr.throughput_rps - 41.6).abs() < 4.0,
        "should pin at single-pod capacity: {}",
        fr.throughput_rps
    );
    assert!(fr.p99 > SimTime::from_millis(500), "queueing tail expected");
    // Conservation: arrivals = completed + still queued/in flight.
    assert!(fr.arrivals > fr.completed);
    assert!(fr.arrivals as f64 >= 80.0 * 4.9);
}

/// Two *functions* serving the same model share one weight copy per node
/// (the store is keyed by model, not function).
#[test]
fn cross_function_weight_sharing() {
    const MIB: u64 = 1024 * 1024;
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .model_sharing(true)
            .oversubscribe(true)
            .seed(3),
    );
    p.deploy(
        FunctionConfig::new("alpha", "vit_huge")
            .replicas(1)
            .resources(40.0, 0.5, 0.5),
    )
    .unwrap();
    let one = p.node_memory_used(0);
    p.deploy(
        FunctionConfig::new("beta", "vit_huge")
            .replicas(1)
            .resources(40.0, 0.5, 0.5),
    )
    .unwrap();
    let two = p.node_memory_used(0);
    // Second function adds only its private instance (2101 MiB), not
    // another weight copy (2634 MiB) or context (300 MiB).
    assert_eq!((two - one) / MIB, 2101);
}

/// An exclusive (device-plugin) cluster runs one pod per node and scales
/// across nodes.
#[test]
fn exclusive_cluster_scales_across_nodes() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(3)
            .policy(SharingPolicy::Exclusive)
            .warmup(SimTime::from_secs(1))
            .seed(4),
    );
    let f = p
        .deploy(FunctionConfig::new("f", "resnet50").replicas(3))
        .unwrap();
    assert_eq!(p.replicas(f), 3);
    // A fourth replica has nowhere to go.
    p.scale_to(f, 4);
    assert_eq!(p.replicas(f), 3);
    assert_eq!(p.unschedulable_pods(), 1);
    p.set_load(f, ArrivalProcess::poisson(150.0, 5));
    let report = p.run_for(SimTime::from_secs(4));
    // Three exclusive pods ≈ 3 × 71 rps capacity; 150 offered flows.
    assert!(
        (report.functions[&f].throughput_rps - 150.0).abs() < 15.0,
        "rps {}",
        report.functions[&f].throughput_rps
    );
    assert_eq!(report.gpus_used(), 3);
}

/// Draining pods finish their queued work: scale 4 → 1 under load and
/// every dispatched request still completes.
#[test]
fn drain_completes_in_flight_requests() {
    let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(5));
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(4)
                .resources(12.0, 1.0, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::constant(120.0));
    p.run_for(SimTime::from_millis(500));
    p.scale_to(f, 1);
    // Stop the load so the system can fully drain.
    p.set_load(f, ArrivalProcess::constant(0.0));
    let report = p.run_for(SimTime::from_secs(5));
    let fr = &report.functions[&f];
    assert_eq!(fr.replicas, 1);
    assert_eq!(
        fr.arrivals, fr.completed,
        "drained pods must not drop requests"
    );
}

/// Warm-up exclusion: a cold start before warm-up must not depress the
/// steady-state throughput number.
#[test]
fn warmup_excludes_cold_start() {
    let run = |warmup_s: u64| {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(1)
                .warmup(SimTime::from_secs(warmup_s))
                .seed(6),
        );
        let f = p
            .deploy(
                FunctionConfig::new("f", "resnet50")
                    .replicas(1)
                    .resources(12.0, 1.0, 1.0),
            )
            .unwrap();
        // Load only starts after two quiet seconds.
        p.set_load(
            f,
            ArrivalProcess::profile(
                vec![
                    (SimTime::ZERO, 0.0),
                    (SimTime::from_secs(2), 0.0),
                    (SimTime::from_secs(2), 30.0),
                    (SimTime::from_secs(6), 30.0),
                ],
                7,
            ),
        );
        p.run_for(SimTime::from_secs(6)).functions[&f].throughput_rps
    };
    let with_warmup = run(2);
    let without = run(0);
    assert!(with_warmup > without, "{with_warmup} vs {without}");
    assert!((with_warmup - 30.0).abs() < 4.0, "steady rate {with_warmup}");
}

/// The replica series lands in the CSV export with plausible values.
#[test]
fn csv_export_of_a_scaling_run() {
    let mut p = Platform::new(PlatformConfig::default().nodes(2).seed(8));
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(2)
                .resources(12.0, 0.5, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(40.0, 9));
    p.run_for(SimTime::from_secs(2));
    p.scale_to(f, 3);
    let report = p.run_for(SimTime::from_secs(2));
    let ts = csv::timeseries_csv(&report);
    let replica_rows: Vec<&str> = ts
        .lines()
        .filter(|l| l.starts_with("replicas,f,"))
        .collect();
    assert!(replica_rows.len() >= 10, "rows: {}", replica_rows.len());
    // The last sample reflects the scale-up.
    let last_value: f64 = replica_rows
        .last()
        .unwrap()
        .rsplit(',')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(last_value, 3.0);
    // The node CSV mentions both workers.
    let nodes = csv::nodes_csv(&report);
    assert!(nodes.contains("gpu-worker-0"));
    assert!(nodes.contains("gpu-worker-1"));
}

/// Racing mode never schedules window resets, keeping the event stream
/// minimal — and still serves correctly.
#[test]
fn racing_runs_without_quota_machinery() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::Racing)
            .oversubscribe(true)
            .seed(10),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .replicas(2)
                .resources(100.0, 1.0, 1.0),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::constant(50.0));
    let report = p.run_for(SimTime::from_secs(3));
    assert!((report.functions[&f].throughput_rps - 50.0).abs() < 5.0);
}

/// Live reconfiguration: growing a running function's partition raises
/// its throughput without redeploying; shrinking the quota lowers it.
#[test]
fn reconfigure_running_function() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .warmup(SimTime::from_secs(1))
            .seed(12),
    );
    let f = p
        .deploy(
            FunctionConfig::new("f", "resnet50")
                .resources(6.0, 1.0, 1.0)
                .saturating(),
        )
        .unwrap();
    let small = p.run_for(SimTime::from_secs(3)).functions[&f].throughput_rps;
    // 6 % → 24 %: ResNet reaches its saturation partition.
    p.reconfigure(f, 24.0, 1.0, 1.0).unwrap();
    let before = p.report().functions[&f].completed;
    p.run_for(SimTime::from_secs(3));
    let after = p.report().functions[&f].completed;
    let grown = (after - before) as f64 / 3.0;
    assert!(
        grown > small * 2.0,
        "24 % partition should far outrun 6 %: {small} → {grown}"
    );
    // Now clamp the quota to 20 %: throughput drops proportionally.
    p.reconfigure(f, 24.0, 0.2, 0.2).unwrap();
    p.run_for(SimTime::from_secs(1)); // settle into the new quota
    let before = p.report().functions[&f].completed;
    p.run_for(SimTime::from_secs(3));
    let after = p.report().functions[&f].completed;
    let clamped = (after - before) as f64 / 3.0;
    assert!(
        (clamped - 20.0).abs() < 4.0,
        "quota 0.2 should serve ~20 rps: {clamped}"
    );
    // Unknown function errors cleanly.
    assert!(p
        .reconfigure(fastg_cluster::FuncId(99), 12.0, 0.5, 0.5)
        .is_err());
}

/// Deploying more replicas than fit fails atomically with a clear error
/// and counts the unschedulable pod.
#[test]
fn partial_deploy_failure_reports() {
    let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(11));
    let err = p.deploy(
        FunctionConfig::new("wide", "resnet50")
            .replicas(3)
            .resources(50.0, 0.6, 0.6),
    );
    // 3 × (60 × 50) = 9000 > … actually two fit (6000), the third fails.
    assert!(err.is_err());
    let err = err.unwrap_err();
    assert_eq!(err, fastgshare::platform::PlatformError::NoNodeFits);
    assert!(err.to_string().contains("new GPU required"));
    assert_eq!(p.unschedulable_pods(), 1);
}
