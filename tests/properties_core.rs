//! Property tests for the FaST-GShare policy components: the Maximal
//! Rectangles Algorithm, the Heuristic Scaling Algorithm, the FaST
//! Backend and the model store.

use fastg_cluster::{PodId, ResourceSpec};
use fastg_des::SimTime;
use fastg_gpu::GpuMemory;
use fastgshare::manager::{BackendConfig, FastBackend, RequestOutcome, SharingPolicy};
use fastgshare::modelshare::ModelStorageServer;
use fastgshare::scheduler::{heuristic_scale, ConfigPoint, GpuRects, Rect, RunningPod, ScaleAction};
use proptest::prelude::*;

/// Checks every MRA free-list invariant directly (release builds don't
/// run the internal debug checks).
fn check_mra_invariants(g: &GpuRects, placements: &[(PodId, Rect)]) -> Result<(), TestCaseError> {
    let bounds = Rect::new(0, 0, 100, 100);
    for r in g.free_rects() {
        prop_assert!(bounds.contains(r), "free rect out of bounds: {r:?}");
        for &(_, p) in placements {
            prop_assert!(!r.intersects(&p), "free rect {r:?} overlaps placement {p:?}");
        }
    }
    for (i, a) in g.free_rects().iter().enumerate() {
        for (j, b) in g.free_rects().iter().enumerate() {
            if i != j {
                prop_assert!(!b.contains(a), "free rect {a:?} contained in {b:?}");
            }
        }
    }
    for (i, &(_, a)) in placements.iter().enumerate() {
        for &(_, b) in placements.iter().skip(i + 1) {
            prop_assert!(!a.intersects(&b), "placements overlap: {a:?} {b:?}");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 2 invariants hold under arbitrary place/release churn,
    /// and the free area accounting is exact.
    #[test]
    fn mra_invariants_under_churn(
        ops in prop::collection::vec((0u8..2, 1u32..=60, 1u32..=60), 1..80)
    ) {
        let mut g = GpuRects::new(100, 100, 12);
        let mut placements: Vec<(PodId, Rect)> = Vec::new();
        let mut next = 0u64;
        for &(op, w, h) in &ops {
            if op == 0 || placements.is_empty() {
                let pod = PodId(next);
                next += 1;
                if let Some(rect) = g.place(pod, w, h) {
                    prop_assert_eq!(rect.w, w);
                    prop_assert_eq!(rect.h, h);
                    placements.push((pod, rect));
                }
            } else {
                let idx = (w as usize * h as usize) % placements.len();
                let (pod, rect) = placements.swap_remove(idx);
                let released = g.release(pod).expect("placed pod releases");
                prop_assert_eq!(released, rect);
            }
            let used: u64 = placements.iter().map(|&(_, r)| r.area()).sum();
            prop_assert_eq!(g.used_area(), used);
            prop_assert_eq!(g.free_area(), 10_000 - used);
            check_mra_invariants(&g, &placements)?;
        }
        // Restructuring never breaks anything either.
        g.restructure();
        check_mra_invariants(&g, &placements)?;
    }

    /// Everything placeable before a restructure is placeable after: the
    /// rebuild only consolidates, never loses reachable space.
    #[test]
    fn restructure_preserves_placeability(
        seeds in prop::collection::vec((1u32..=50, 1u32..=50), 1..12),
        probe in (1u32..=100, 1u32..=100)
    ) {
        let mut g = GpuRects::new(100, 100, 1_000); // no auto-restructure
        for (i, &(w, h)) in seeds.iter().enumerate() {
            let _ = g.place(PodId(i as u64), w, h);
        }
        let before = g.best_fit(probe.0, probe.1).is_some();
        g.restructure();
        let after = g.best_fit(probe.0, probe.1).is_some();
        // Restructure computes the *maximal* free rectangles around the
        // same placements, so fit can only improve.
        prop_assert!(!before || after, "restructure lost a feasible placement");
    }

    /// Algorithm 1 scale-up always provisions at least the gap, with at
    /// most one non-p_eff pod.
    #[test]
    fn scaling_up_covers_gap(
        delta in 0.1f64..500.0,
        profile in prop::collection::vec((1u32..=100, 1u32..=100, 0.5f64..200.0), 1..10)
    ) {
        let points: Vec<ConfigPoint> = profile
            .iter()
            .map(|&(sm, q, rps)| ConfigPoint { sm: sm as f64, quota: q as f64 / 100.0, rps })
            .collect();
        let actions = heuristic_scale(delta, &points, &[]);
        let capacity: f64 = actions
            .iter()
            .map(|a| match a {
                ScaleAction::Up(p) => p.rps,
                ScaleAction::Down(_) => 0.0,
            })
            .sum();
        prop_assert!(capacity >= delta - 1e-6, "capacity {capacity} < gap {delta}");
        prop_assert!(actions.iter().all(|a| matches!(a, ScaleAction::Up(_))));
        // Bulk pods all share the p_eff configuration.
        let distinct: std::collections::BTreeSet<u64> = actions
            .iter()
            .map(|a| match a {
                ScaleAction::Up(p) => (p.rps * 1e6) as u64,
                _ => 0,
            })
            .collect();
        prop_assert!(distinct.len() <= 2, "more than bulk + residual configs");
    }

    /// Algorithm 1 scale-down never removes more capacity than the
    /// surplus.
    #[test]
    fn scaling_down_keeps_capacity(
        surplus in 0.1f64..300.0,
        pods in prop::collection::vec((1u32..=100, 1u32..=100, 0.5f64..100.0), 1..12)
    ) {
        let running: Vec<RunningPod> = pods
            .iter()
            .enumerate()
            .map(|(i, &(sm, q, rps))| RunningPod {
                pod: PodId(i as u64),
                config: ConfigPoint { sm: sm as f64, quota: q as f64 / 100.0, rps },
            })
            .collect();
        let total: f64 = running.iter().map(|r| r.config.rps).sum();
        let actions = heuristic_scale(-surplus, &[], &running);
        let removed: f64 = actions
            .iter()
            .map(|a| match a {
                ScaleAction::Down(p) => running
                    .iter()
                    .find(|r| r.pod == *p)
                    .map(|r| r.config.rps)
                    .unwrap_or(0.0),
                _ => 0.0,
            })
            .sum();
        prop_assert!(removed <= surplus + 1e-9, "removed {removed} > surplus {surplus}");
        prop_assert!(total - removed >= total - surplus - 1e-9);
        // No pod drained twice.
        let mut seen = std::collections::BTreeSet::new();
        for a in &actions {
            if let ScaleAction::Down(p) = a {
                prop_assert!(seen.insert(*p), "pod {p:?} drained twice");
            }
        }
    }

    /// Backend safety under random request/sync/reset sequences: the SM
    /// adapter never exceeds the global limit, and Q_used never exceeds
    /// Q_limit by more than one burst.
    #[test]
    fn backend_adapter_and_quota_safety(
        ops in prop::collection::vec((0u8..4, 0u64..6, 1u64..5_000), 10..250)
    ) {
        let window = SimTime::from_millis(100);
        let mut b = FastBackend::new(BackendConfig {
            policy: SharingPolicy::FaST,
            window,
            token_lease: SimTime::from_millis(5),
            sm_global_limit: 100.0,
            ..BackendConfig::default()
        });
        let shares = [12.0, 24.0, 50.0, 60.0, 6.0, 80.0];
        for (i, &s) in shares.iter().enumerate() {
            b.register(PodId(i as u64), ResourceSpec::new(s, 0.3, 0.7, 0));
        }
        let mut in_burst = [false; 6];
        let mut has_token = [false; 6];
        let mut now = SimTime::ZERO;
        for &(op, pod_idx, us) in &ops {
            now += SimTime::from_micros(us % 997 + 1);
            let idx = (pod_idx % 6) as usize;
            let pod = PodId(idx as u64);
            match op {
                0 if !in_burst[idx] => {
                    let (outcome, _side) = b.request(now, pod).unwrap();
                    if let RequestOutcome::Granted(_) = outcome {
                        b.begin_burst(pod).unwrap();
                        in_burst[idx] = true;
                        has_token[idx] = true;
                    }
                }
                1 if in_burst[idx] => {
                    let burst = SimTime::from_micros(us);
                    let out = b.sync_point(now, pod, burst).unwrap();
                    in_burst[idx] = false;
                    has_token[idx] = out.lease_valid;
                    for g in &out.granted {
                        has_token[g.pod.0 as usize] = true;
                    }
                }
                2 if !in_burst[idx] => {
                    for g in b.release_idle(now, pod) {
                        has_token[g.pod.0 as usize] = true;
                    }
                    has_token[idx] = false;
                }
                3 => {
                    for g in b.on_window_reset(now) {
                        has_token[g.pod.0 as usize] = true;
                    }
                    // Quotas reset.
                    for i in 0..6 {
                        let qs = b.quota_state(PodId(i as u64)).unwrap();
                        prop_assert_eq!(qs.q_used, SimTime::ZERO);
                    }
                }
                _ => {}
            }
            prop_assert!(
                b.sm_running() <= 100.0 + 1e-6,
                "SM adapter exceeded: {}",
                b.sm_running()
            );
            for i in 0..6u64 {
                let qs = b.quota_state(PodId(i)).unwrap();
                // One burst of at most 5 ms may overrun the limit.
                prop_assert!(
                    qs.q_used <= qs.q_limit + SimTime::from_millis(5),
                    "quota overrun on pod {i}: {:?} vs {:?}",
                    qs.q_used,
                    qs.q_limit
                );
            }
        }
    }

    /// Model store refcount safety: memory usage matches exactly
    /// `ctx × live models + Σ live tensor sizes` under random attach /
    /// release interleavings.
    #[test]
    fn model_store_accounting(ops in prop::collection::vec((0u8..2, 0u8..3), 1..150)) {
        const MB: u64 = 1024 * 1024;
        let mut mem = GpuMemory::new(64 * 1024 * MB);
        let mut server = ModelStorageServer::new(300 * MB);
        let models = ["a", "b", "c"];
        let sizes = [100 * MB, 500 * MB, 2_000 * MB];
        let mut refs = [0u32; 3];
        for &(op, mi) in &ops {
            let i = mi as usize;
            if op == 0 {
                server.get_or_store(&mut mem, models[i], "w", sizes[i]).unwrap();
                refs[i] += 1;
            } else if refs[i] > 0 {
                server.release(&mut mem, models[i], "w").unwrap();
                refs[i] -= 1;
            }
            let expected: u64 = (0..3)
                .map(|j| if refs[j] > 0 { 300 * MB + sizes[j] } else { 0 })
                .sum();
            prop_assert_eq!(mem.used(), expected);
            for j in 0..3 {
                prop_assert_eq!(server.refs(models[j], "w"), refs[j]);
            }
        }
    }
}
