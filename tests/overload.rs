//! Overload control plane behaviour: bounded admission, deadline-aware
//! shedding, circuit breaking and brownout serving under flash crowds.

use fastg_cluster::FuncId;
use fastg_des::SimTime;
use fastg_workload::patterns;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{
    BreakerState, FunctionConfig, OverloadConfig, Platform, PlatformConfig,
};

/// Two replicas at half quota (~70 rps capacity) hit by a 400 rps flash
/// crowd: the canonical overload scenario.
fn flash_platform(overload: Option<OverloadConfig>, seed: u64) -> (Platform, FuncId) {
    let mut cfg = PlatformConfig::default()
        .nodes(2)
        .policy(SharingPolicy::FaST)
        .seed(seed);
    if let Some(o) = overload {
        cfg = cfg.overload(o);
    }
    let mut p = Platform::new(cfg);
    let f = p
        .deploy(
            FunctionConfig::new("flash", "resnet50")
                .slo_ms(200)
                .replicas(2)
                .resources(50.0, 0.5, 0.8),
        )
        .unwrap();
    p.set_load(
        f,
        patterns::flash_crowd(
            30.0,
            400.0,
            SimTime::from_secs(5),
            SimTime::from_secs(1),
            SimTime::from_secs(5),
            SimTime::from_secs(30),
            0,
            seed,
        ),
    );
    (p, f)
}

/// The conservation identity every run must satisfy: arrivals are either
/// completed, refused at admission, shed/dropped, still queued, or still
/// in flight. Nothing is lost or double-counted.
fn assert_conserved(p: &mut Platform, f: FuncId) {
    let r = p.report();
    let fr = &r.functions[&f];
    let accounted = fr.completed
        + fr.rejected
        + fr.shed_deadline
        + fr.dropped
        + p.queued_requests(f) as u64
        + p.in_flight_requests() as u64;
    assert_eq!(
        fr.arrivals, accounted,
        "arrivals {} != completed {} + rejected {} + shed {} + dropped {} + queued {} + in-flight {}",
        fr.arrivals, fr.completed, fr.rejected, fr.shed_deadline, fr.dropped,
        p.queued_requests(f), p.in_flight_requests()
    );
}

#[test]
fn bounded_queue_rejects_under_flash_crowd() {
    let (mut p, f) = flash_platform(Some(OverloadConfig::default()), 41);
    p.run_for(SimTime::from_secs(12));
    let cap = OverloadConfig::default().queue_capacity;
    assert!(p.queued_requests(f) <= cap, "queue {} over cap {cap}", p.queued_requests(f));
    assert!(p.rejected_requests(f) > 0, "flash crowd never hit the bound");
    assert_conserved(&mut p, f);
}

#[test]
fn without_overload_control_the_queue_grows_unbounded() {
    let (mut p, f) = flash_platform(None, 41);
    p.run_for(SimTime::from_secs(11));
    let r = p.report();
    let fr = &r.functions[&f];
    assert_eq!(fr.rejected, 0);
    assert_eq!(fr.shed_deadline, 0);
    assert_eq!(fr.breaker_trips, 0);
    assert!(
        p.queued_requests(f) > OverloadConfig::default().queue_capacity,
        "silent unbounded queueing should exceed the bounded cap (got {})",
        p.queued_requests(f)
    );
    assert_conserved(&mut p, f);
}

#[test]
fn deadline_shedding_drops_provably_dead_requests() {
    let (mut p, f) = flash_platform(Some(OverloadConfig::default()), 43);
    p.run_for(SimTime::from_secs(15));
    assert!(
        p.shed_requests(f) > 0,
        "a 200 ms deadline cannot survive a 400 rps crowd over ~70 rps capacity"
    );
    assert_conserved(&mut p, f);
}

#[test]
fn breaker_trips_and_brownout_serves_degraded() {
    let (mut p, f) = flash_platform(Some(OverloadConfig::default()), 47);
    // Run to mid-crowd: breaker must have tripped on shed rate.
    p.run_for(SimTime::from_secs(9));
    assert!(p.breaker_trips(f) >= 1, "no trip during the crowd");
    assert!(p.brownout_active(f), "shed-rate trip should engage brownout");
    let r = p.report();
    assert!(
        r.functions[&f].browned_out > 0,
        "brownout mode admitted no requests"
    );
    assert_conserved(&mut p, f);
}

#[test]
fn brownout_recovers_to_full_quota_after_the_crowd() {
    let (mut p, f) = flash_platform(Some(OverloadConfig::default()), 53);
    p.run_for(SimTime::from_secs(9));
    assert!(p.brownout_active(f), "crowd should brown the function out");
    // Long quiet tail: hysteresis must close the breaker and restore quota.
    p.run_for(SimTime::from_secs(21));
    assert!(!p.brownout_active(f), "brownout never recovered");
    assert_eq!(p.breaker_state(f), Some(BreakerState::Closed));
    assert_conserved(&mut p, f);
}

#[test]
fn node_crash_trips_the_breaker_to_fast_fail() {
    // Brownout off: a failure-cause trip must hard fast-fail arrivals.
    let o = OverloadConfig::default().brownout(false);
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .policy(SharingPolicy::FaST)
            .seed(59)
            .overload(o),
    );
    let f = p
        .deploy(
            FunctionConfig::new("crashy", "resnet50")
                .slo_ms(200)
                .replicas(2)
                .resources(50.0, 0.5, 0.8),
        )
        .unwrap();
    p.set_load(f, fastg_workload::ArrivalProcess::poisson(60.0, 59));
    p.run_for(SimTime::from_secs(2));
    assert!(p.crash_node(0));
    // Crash-lost requests are breaker failures; with every replica gone,
    // new arrivals queue until the next tick trips the breaker, after
    // which they are refused outright.
    p.run_for(SimTime::from_secs(3));
    assert_eq!(p.breaker_state(f), Some(BreakerState::Open));
    assert!(p.breaker_trips(f) >= 1);
    assert!(
        p.rejected_requests(f) > 0,
        "an Open breaker without brownout must fast-fail arrivals"
    );
    assert_conserved(&mut p, f);
}

#[test]
fn overload_control_improves_goodput_and_cuts_waste() {
    let run = |overload: Option<OverloadConfig>| {
        let (mut p, f) = flash_platform(overload, 61);
        let r = p.run_for(SimTime::from_secs(30));
        (
            r.functions[&f].goodput_rps,
            r.functions[&f].wasted_service,
        )
    };
    let (good_on, waste_on) = run(Some(OverloadConfig::default()));
    let (good_off, waste_off) = run(None);
    assert!(
        good_on > good_off,
        "goodput with control on ({good_on:.2} rps) must beat off ({good_off:.2} rps)"
    );
    assert!(
        waste_on < waste_off,
        "wasted work with control on ({waste_on}) must be below off ({waste_off})"
    );
}

#[test]
fn overload_runs_replay_digest_identically() {
    let digest = || {
        let (mut p, _) = flash_platform(Some(OverloadConfig::default()), 67);
        let r = p.run_for(SimTime::from_secs(20));
        (r.digest(), p.events_handled())
    };
    assert_eq!(digest(), digest());
}
