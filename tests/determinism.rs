//! Determinism: the whole stack replays identically for a given seed —
//! the property every calibration and regression test leans on.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::{SchedPolicy, SharingPolicy};
use fastgshare::platform::{
    run_sweep, FaultKind, FaultPlan, FunctionConfig, Platform, PlatformConfig, Scenario, TieBreak,
};

/// A run fingerprint: event count plus the externally visible outcomes.
fn fingerprint(policy: SharingPolicy, seed: u64) -> (u64, u64, SimTime, SimTime, u64) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(2)
            .policy(policy)
            .oversubscribe(true)
            .seed(seed),
    );
    let resnet = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .replicas(3)
                .resources(12.0, 0.5, 0.8),
        )
        .unwrap();
    let rnnt = p
        .deploy(
            FunctionConfig::new("rnnt", "rnnt")
                .replicas(2)
                .resources(24.0, 0.4, 0.4),
        )
        .unwrap();
    p.set_load(resnet, ArrivalProcess::poisson(60.0, seed.wrapping_add(1)));
    p.set_load(rnnt, ArrivalProcess::poisson(8.0, seed.wrapping_add(2)));
    let report = p.run_for(SimTime::from_secs(4));
    (
        p.events_handled(),
        report.functions[&resnet].completed,
        report.functions[&resnet].p99,
        report.functions[&rnnt].p99,
        report.functions[&rnnt].slo_violations,
    )
}

#[test]
fn fast_policy_replays_exactly() {
    assert_eq!(
        fingerprint(SharingPolicy::FaST, 7),
        fingerprint(SharingPolicy::FaST, 7)
    );
}

#[test]
fn single_token_policy_replays_exactly() {
    assert_eq!(
        fingerprint(SharingPolicy::SingleToken, 7),
        fingerprint(SharingPolicy::SingleToken, 7)
    );
}

#[test]
fn racing_policy_replays_exactly() {
    assert_eq!(
        fingerprint(SharingPolicy::Racing, 7),
        fingerprint(SharingPolicy::Racing, 7)
    );
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(SharingPolicy::FaST, 7);
    let b = fingerprint(SharingPolicy::FaST, 8);
    assert_ne!(a, b, "different seeds should give different traces");
}

#[test]
fn policies_actually_differ() {
    let fast = fingerprint(SharingPolicy::FaST, 7);
    let ts = fingerprint(SharingPolicy::SingleToken, 7);
    assert_ne!(
        fast, ts,
        "FaST and time sharing must produce different schedules"
    );
}

/// Runs a full platform (recovery on, optional fault plan) and returns the
/// report's FNV digest over its canonical byte rendering, plus the number
/// of bursts the fast-forward layer coalesced.
fn digest_run_ff(plan: Option<FaultPlan>, fastforward: bool) -> (u64, String, u64) {
    let mut cfg = PlatformConfig::default()
        .nodes(2)
        .policy(SharingPolicy::FaST)
        .recovery(true)
        .seed(11)
        .fastforward(fastforward);
    if let Some(plan) = plan {
        cfg = cfg.fault_plan(plan);
    }
    let mut p = Platform::new(cfg);
    let f = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .replicas(2)
                .resources(25.0, 0.5, 0.8),
        )
        .unwrap();
    p.set_load(f, ArrivalProcess::poisson(50.0, 13));
    let report = p.run_for(SimTime::from_secs(6));
    (report.digest(), report.canonical_text(), p.ff_bursts())
}

/// Runs with whatever fast-forward mode the environment selected (the
/// default configuration most tests and users get).
fn digest_run(plan: Option<FaultPlan>) -> (u64, String) {
    let (d, t, _) = digest_run_ff(plan, PlatformConfig::default().fastforward);
    (d, t)
}

fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .at(SimTime::from_secs(1), FaultKind::PodCrash { func_index: 0 })
        .at(
            SimTime::from_secs(2),
            FaultKind::NodeDegrade {
                node_index: 1,
                factor: 2.0,
            },
        )
        .at(SimTime::from_secs(3), FaultKind::NodeCrash { node_index: 0 })
        .at(SimTime::from_secs(4), FaultKind::NodeRecover { node_index: 1 })
}

/// The strongest replay check: the entire report — every counter, every
/// float bit pattern, every time-series sample — is byte-identical when
/// the same configuration and seed run twice, without a fault plan...
#[test]
fn report_digest_replays_exactly() {
    let (da, ta) = digest_run(None);
    let (db, tb) = digest_run(None);
    assert_eq!(ta, tb, "canonical report text must replay byte-for-byte");
    assert_eq!(da, db);
}

/// ...and with chaos injected: faults, zombie drains and recovery are all
/// scheduled through the same deterministic event queue.
#[test]
fn report_digest_replays_exactly_under_faults() {
    let (da, ta) = digest_run(Some(chaos_plan()));
    let (db, tb) = digest_run(Some(chaos_plan()));
    assert_eq!(ta, tb, "chaos replay must be byte-for-byte identical");
    assert_eq!(da, db);
    // The plan must actually have perturbed the run (digests differ from
    // the fault-free trace), or this test would be vacuous.
    let (dc, _) = digest_run(None);
    assert_ne!(da, dc, "fault plan should change the trace");
}

/// Event coalescing is a pure optimization: with fast-forward forced on
/// and forced off, the whole report — every counter, float bit pattern
/// and time-series sample — is byte-identical, and the coalescing layer
/// genuinely engaged (the parity claim would be vacuous otherwise).
#[test]
fn fastforward_parity_clean() {
    let (d_on, t_on, bursts) = digest_run_ff(None, true);
    let (d_off, t_off, none) = digest_run_ff(None, false);
    assert!(bursts > 0, "fast-forward never engaged");
    assert_eq!(none, 0, "disabled fast-forward must not coalesce");
    assert_eq!(t_on, t_off, "coalesced run must be byte-identical");
    assert_eq!(d_on, d_off);
}

/// ...and the same under chaos: crashes, clock degradation and recovery
/// all invalidate in-flight macro-events mid-burst, reconstructing exact
/// per-kernel state.
#[test]
fn fastforward_parity_under_chaos() {
    let (d_on, t_on, bursts) = digest_run_ff(Some(chaos_plan()), true);
    let (d_off, t_off, _) = digest_run_ff(Some(chaos_plan()), false);
    assert!(bursts > 0, "fast-forward never engaged under chaos");
    assert_eq!(t_on, t_off, "chaos run must be byte-identical");
    assert_eq!(d_on, d_off);
}

/// A fleet-shaped scenario under cluster fast-forward: single-replica
/// constant-rate functions (the steady regime's habitat) plus the chaos
/// plan, run under one same-instant tie-break order.
fn fleet_digest(tiebreak: TieBreak) -> (String, u64) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(3)
            .policy(SharingPolicy::FaST)
            .oversubscribe(true)
            .recovery(true)
            .seed(23)
            .fastforward(true)
            .cluster_fastforward(true)
            .tiebreak(tiebreak)
            .fault_plan(chaos_plan()),
    );
    for (i, (model, rate)) in [("resnet50", 18.0), ("bert_base", 30.0), ("rnnt", 9.0)]
        .iter()
        .enumerate()
    {
        let f = p
            .deploy(
                FunctionConfig::new(&format!("fleet-{i}"), model)
                    .replicas(1)
                    .resources(100.0, 1.0, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::constant(*rate));
    }
    let report = p.run_for(SimTime::from_secs(6));
    (report.canonical_text(), p.ff_cluster_cycles())
}

/// Cluster fast-forward is tie-break independent: the four canonical
/// same-instant delivery orders (the `race_detector` matrix) reproduce
/// the fleet report byte-for-byte, chaos included — and the steady
/// regime genuinely engaged, or the claim would be vacuous.
#[test]
fn fleet_digest_identical_across_tiebreak_orders() {
    let (fifo, cycles) = fleet_digest(TieBreak::Fifo);
    assert!(cycles > 0, "cluster fast-forward never engaged on the fleet");
    for tb in [
        TieBreak::Lifo,
        TieBreak::SeededShuffle(1),
        TieBreak::SeededShuffle(2),
    ] {
        let (other, _) = fleet_digest(tb);
        assert_eq!(fifo, other, "tie-break {tb:?} changed the fleet report");
    }
}

/// The fleet scenario again, but placed by the guillotine fast path
/// instead of the paper's maximal-rects selector.
fn fastpath_fleet_digest(tiebreak: TieBreak) -> (String, u64) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(3)
            .policy(SharingPolicy::FaST)
            .scheduler(SchedPolicy::FastPath)
            .oversubscribe(true)
            .recovery(true)
            .seed(23)
            .fastforward(true)
            .cluster_fastforward(true)
            .tiebreak(tiebreak)
            .fault_plan(chaos_plan()),
    );
    for (i, (model, rate)) in [("resnet50", 18.0), ("bert_base", 30.0), ("rnnt", 9.0)]
        .iter()
        .enumerate()
    {
        let f = p
            .deploy(
                FunctionConfig::new(&format!("fleet-{i}"), model)
                    .replicas(1)
                    .resources(100.0, 1.0, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::constant(*rate));
    }
    let report = p.run_for(SimTime::from_secs(6));
    (report.canonical_text(), report.digest())
}

/// The guillotine arena is tie-break independent end-to-end: swapping the
/// same-instant delivery order cannot change which free piece a demand
/// lands in, so the FastPath fleet report replays byte-for-byte across
/// the full `race_detector` matrix, chaos included.
#[test]
fn fastpath_fleet_digest_identical_across_tiebreak_orders() {
    assert_eq!(
        "fast-path",
        Platform::new(PlatformConfig::default().scheduler(SchedPolicy::FastPath))
            .scheduler_name(),
        "config must actually select the guillotine arena"
    );
    let (fifo, _) = fastpath_fleet_digest(TieBreak::Fifo);
    for tb in [
        TieBreak::Lifo,
        TieBreak::SeededShuffle(1),
        TieBreak::SeededShuffle(2),
    ] {
        let (other, _) = fastpath_fleet_digest(tb);
        assert_eq!(fifo, other, "tie-break {tb:?} changed the FastPath fleet");
    }
}

/// A small sweep grid mixing clean and chaotic scenarios.
fn sweep_grid(with_faults: bool) -> Vec<Scenario> {
    [11u64, 12, 13]
        .iter()
        .map(|&seed| {
            let mut cfg = PlatformConfig::default()
                .nodes(2)
                .policy(SharingPolicy::FaST)
                .recovery(true)
                .seed(seed);
            if with_faults {
                cfg = cfg.fault_plan(chaos_plan());
            }
            Scenario::new(format!("seed-{seed}"), cfg)
                .function(
                    FunctionConfig::new("resnet", "resnet50")
                        .replicas(2)
                        .resources(25.0, 0.5, 0.8),
                )
                .load(0, ArrivalProcess::poisson(50.0, seed.wrapping_add(2)))
                .duration(SimTime::from_secs(5))
        })
        .collect()
}

/// Sequential scenario runs and `run_sweep` at 1 and 4 worker threads all
/// produce byte-identical report digests, in input order — parallelism is
/// a pure wall-clock optimization.
#[test]
fn sweep_digests_identical_across_thread_counts() {
    let sequential: Vec<(String, u64)> = sweep_grid(false)
        .into_iter()
        .map(|sc| {
            let name = sc.name.clone();
            (name, sc.run().unwrap().digest())
        })
        .collect();
    for threads in [1, 4] {
        let swept = run_sweep(sweep_grid(false), threads).unwrap();
        let digests: Vec<(String, u64)> = swept
            .into_iter()
            .map(|(name, report)| (name, report.digest()))
            .collect();
        assert_eq!(
            digests, sequential,
            "threads={threads} must replay the sequential digests in order"
        );
    }
}

/// The same holds with a chaos [`FaultPlan`] injected into every scenario:
/// faults, drains and recovery ride the same deterministic event queue, so
/// thread count still cannot perturb the trace.
#[test]
fn sweep_digests_identical_across_thread_counts_under_faults() {
    let sequential: Vec<u64> = sweep_grid(true)
        .into_iter()
        .map(|sc| sc.run().unwrap().digest())
        .collect();
    for threads in [1, 4] {
        let swept = run_sweep(sweep_grid(true), threads).unwrap();
        let digests: Vec<u64> = swept.iter().map(|(_, r)| r.digest()).collect();
        assert_eq!(digests, sequential, "threads={threads} chaos sweep diverged");
    }
    // The chaos grid must genuinely differ from the clean grid, or the
    // fault half of this property would be vacuous.
    let clean: Vec<u64> = sweep_grid(false)
        .into_iter()
        .map(|sc| sc.run().unwrap().digest())
        .collect();
    assert_ne!(sequential, clean, "fault plan should change every trace");
}

/// Fast-forward parity survives the parallel sweep runner: at 1 and 4
/// worker threads, a chaos grid with coalescing forced on digests
/// identically to the same grid with coalescing forced off.
#[test]
fn fastforward_parity_across_thread_counts() {
    let grid = |ff: bool| -> Vec<Scenario> {
        sweep_grid(true)
            .into_iter()
            .map(|mut sc| {
                sc.config = sc.config.fastforward(ff);
                sc
            })
            .collect()
    };
    for threads in [1, 4] {
        let on: Vec<u64> = run_sweep(grid(true), threads)
            .unwrap()
            .iter()
            .map(|(_, r)| r.digest())
            .collect();
        let off: Vec<u64> = run_sweep(grid(false), threads)
            .unwrap()
            .iter()
            .map(|(_, r)| r.digest())
            .collect();
        assert_eq!(on, off, "threads={threads} fast-forward parity broke");
    }
}

/// A flash-crowd scenario with the overload control plane on or off:
/// the new state machines (bounded admission, deadline shedding, breaker,
/// brownout reconfigure) must be digest-deterministic in every mode.
fn overload_digest(
    control: bool,
    plan: Option<FaultPlan>,
    fastforward: bool,
) -> (u64, String) {
    let mut cfg = PlatformConfig::default()
        .nodes(2)
        .policy(SharingPolicy::FaST)
        .recovery(true)
        .seed(17)
        .fastforward(fastforward)
        .overload_control(control);
    if let Some(plan) = plan {
        cfg = cfg.fault_plan(plan);
    }
    let mut p = Platform::new(cfg);
    let f = p
        .deploy(
            FunctionConfig::new("flash", "resnet50")
                .slo_ms(200)
                .replicas(2)
                .resources(50.0, 0.5, 0.8),
        )
        .unwrap();
    p.set_load(
        f,
        fastg_workload::patterns::flash_crowd(
            30.0,
            400.0,
            SimTime::from_secs(1),
            SimTime::from_millis(500),
            SimTime::from_secs(2),
            SimTime::from_secs(6),
            1,
            19,
        ),
    );
    let report = p.run_for(SimTime::from_secs(6));
    (report.digest(), report.canonical_text())
}

/// The overload control plane replays byte-for-byte in the full mode
/// matrix: control {on, off} × fast-forward {on, off} × {clean, chaos}.
/// Each mode must also genuinely differ from its neighbours where the
/// dynamics differ (control on vs off), or the matrix would be vacuous.
#[test]
fn overload_control_replays_exactly_in_every_mode() {
    for control in [false, true] {
        for ff in [false, true] {
            for chaos in [false, true] {
                let plan = || chaos.then(chaos_plan);
                let (da, ta) = overload_digest(control, plan(), ff);
                let (db, tb) = overload_digest(control, plan(), ff);
                assert_eq!(
                    ta, tb,
                    "control={control} ff={ff} chaos={chaos} must replay byte-for-byte"
                );
                assert_eq!(da, db);
            }
        }
    }
    // Control on/off are different systems under a flash crowd.
    let (on, _) = overload_digest(true, None, true);
    let (off, _) = overload_digest(false, None, true);
    assert_ne!(on, off, "overload control should change the trace");
}

/// Fast-forward stays a pure optimization with the overload plane active:
/// brownout reconfigures ride the same `ff_break_node` invalidation as
/// every other contention change, so coalesced and per-kernel runs digest
/// identically, clean and under chaos.
#[test]
fn overload_fastforward_parity() {
    for chaos in [false, true] {
        let plan = || chaos.then(chaos_plan);
        let (d_on, t_on) = overload_digest(true, plan(), true);
        let (d_off, t_off) = overload_digest(true, plan(), false);
        assert_eq!(t_on, t_off, "chaos={chaos} overload FF parity broke");
        assert_eq!(d_on, d_off);
    }
}

/// The flash-crowd overload scenario under the guillotine fast path,
/// run under one same-instant tie-break order.
fn fastpath_overload_digest(tiebreak: TieBreak) -> (u64, String) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(2)
            .policy(SharingPolicy::FaST)
            .scheduler(SchedPolicy::FastPath)
            .recovery(true)
            .seed(17)
            .fastforward(true)
            .overload_control(true)
            .tiebreak(tiebreak)
            .fault_plan(chaos_plan()),
    );
    let f = p
        .deploy(
            FunctionConfig::new("flash", "resnet50")
                .slo_ms(200)
                .replicas(2)
                .resources(50.0, 0.5, 0.8),
        )
        .unwrap();
    p.set_load(
        f,
        fastg_workload::patterns::flash_crowd(
            30.0,
            400.0,
            SimTime::from_secs(1),
            SimTime::from_millis(500),
            SimTime::from_secs(2),
            SimTime::from_secs(6),
            1,
            19,
        ),
    );
    let report = p.run_for(SimTime::from_secs(6));
    (report.digest(), report.canonical_text())
}

/// Overload control, chaos, and the guillotine arena compose without
/// breaking determinism: the FastPath flash-crowd trace is byte-identical
/// across all four canonical same-instant tie-break orders.
#[test]
fn fastpath_overload_digest_identical_across_tiebreak_orders() {
    let (fifo_digest, fifo_text) = fastpath_overload_digest(TieBreak::Fifo);
    for tb in [
        TieBreak::Lifo,
        TieBreak::SeededShuffle(1),
        TieBreak::SeededShuffle(2),
    ] {
        let (digest, text) = fastpath_overload_digest(tb);
        assert_eq!(fifo_text, text, "tie-break {tb:?} changed the FastPath trace");
        assert_eq!(fifo_digest, digest);
    }
}

/// The overload flash-crowd scenario digests identically through the
/// parallel sweep runner at 1 and 4 worker threads, on and off.
#[test]
fn overload_sweep_digests_identical_across_thread_counts() {
    let grid = |control: bool| -> Vec<Scenario> {
        [17u64, 18]
            .iter()
            .map(|&seed| {
                let cfg = PlatformConfig::default()
                    .nodes(2)
                    .policy(SharingPolicy::FaST)
                    .recovery(true)
                    .seed(seed)
                    .overload_control(control)
                    .fault_plan(chaos_plan());
                Scenario::new(format!("flash-{seed}-{control}"), cfg)
                    .function(
                        FunctionConfig::new("flash", "resnet50")
                            .slo_ms(200)
                            .replicas(2)
                            .resources(50.0, 0.5, 0.8),
                    )
                    .load(0, ArrivalProcess::poisson(150.0, seed.wrapping_add(2)))
                    .duration(SimTime::from_secs(5))
            })
            .collect()
    };
    for control in [false, true] {
        let sequential: Vec<u64> = grid(control)
            .into_iter()
            .map(|sc| sc.run().unwrap().digest())
            .collect();
        for threads in [1, 4] {
            let swept: Vec<u64> = run_sweep(grid(control), threads)
                .unwrap()
                .iter()
                .map(|(_, r)| r.digest())
                .collect();
            assert_eq!(
                swept, sequential,
                "control={control} threads={threads} overload sweep diverged"
            );
        }
    }
}

/// Two platforms advanced in different increments reach the same state:
/// `run_for` boundaries must not perturb the trace.
#[test]
fn run_boundaries_do_not_perturb() {
    let build = || {
        let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(5));
        let f = p
            .deploy(
                FunctionConfig::new("f", "resnet50")
                    .replicas(2)
                    .resources(12.0, 1.0, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::poisson(40.0, 6));
        (p, f)
    };
    let (mut a, fa) = build();
    let ra = a.run_for(SimTime::from_secs(4));
    let (mut b, fb) = build();
    for _ in 0..8 {
        b.run_for(SimTime::from_millis(500));
    }
    let rb = b.report();
    assert_eq!(a.events_handled(), b.events_handled());
    assert_eq!(ra.functions[&fa].completed, rb.functions[&fb].completed);
    assert_eq!(ra.functions[&fa].p99, rb.functions[&fb].p99);
}
