//! Determinism: the whole stack replays identically for a given seed —
//! the property every calibration and regression test leans on.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::SharingPolicy;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};

/// A run fingerprint: event count plus the externally visible outcomes.
fn fingerprint(policy: SharingPolicy, seed: u64) -> (u64, u64, SimTime, SimTime, u64) {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(2)
            .policy(policy)
            .oversubscribe(true)
            .seed(seed),
    );
    let resnet = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .replicas(3)
                .resources(12.0, 0.5, 0.8),
        )
        .unwrap();
    let rnnt = p
        .deploy(
            FunctionConfig::new("rnnt", "rnnt")
                .replicas(2)
                .resources(24.0, 0.4, 0.4),
        )
        .unwrap();
    p.set_load(resnet, ArrivalProcess::poisson(60.0, seed.wrapping_add(1)));
    p.set_load(rnnt, ArrivalProcess::poisson(8.0, seed.wrapping_add(2)));
    let report = p.run_for(SimTime::from_secs(4));
    (
        p.events_handled(),
        report.functions[&resnet].completed,
        report.functions[&resnet].p99,
        report.functions[&rnnt].p99,
        report.functions[&rnnt].slo_violations,
    )
}

#[test]
fn fast_policy_replays_exactly() {
    assert_eq!(
        fingerprint(SharingPolicy::FaST, 7),
        fingerprint(SharingPolicy::FaST, 7)
    );
}

#[test]
fn single_token_policy_replays_exactly() {
    assert_eq!(
        fingerprint(SharingPolicy::SingleToken, 7),
        fingerprint(SharingPolicy::SingleToken, 7)
    );
}

#[test]
fn racing_policy_replays_exactly() {
    assert_eq!(
        fingerprint(SharingPolicy::Racing, 7),
        fingerprint(SharingPolicy::Racing, 7)
    );
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(SharingPolicy::FaST, 7);
    let b = fingerprint(SharingPolicy::FaST, 8);
    assert_ne!(a, b, "different seeds should give different traces");
}

#[test]
fn policies_actually_differ() {
    let fast = fingerprint(SharingPolicy::FaST, 7);
    let ts = fingerprint(SharingPolicy::SingleToken, 7);
    assert_ne!(
        fast, ts,
        "FaST and time sharing must produce different schedules"
    );
}

/// Two platforms advanced in different increments reach the same state:
/// `run_for` boundaries must not perturb the trace.
#[test]
fn run_boundaries_do_not_perturb() {
    let build = || {
        let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(5));
        let f = p
            .deploy(
                FunctionConfig::new("f", "resnet50")
                    .replicas(2)
                    .resources(12.0, 1.0, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::poisson(40.0, 6));
        (p, f)
    };
    let (mut a, fa) = build();
    let ra = a.run_for(SimTime::from_secs(4));
    let (mut b, fb) = build();
    for _ in 0..8 {
        b.run_for(SimTime::from_millis(500));
    }
    let rb = b.report();
    assert_eq!(a.events_handled(), b.events_handled());
    assert_eq!(ra.functions[&fa].completed, rb.functions[&fb].completed);
    assert_eq!(ra.functions[&fa].p99, rb.functions[&fb].p99);
}
