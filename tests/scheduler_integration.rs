//! FaST-Scheduler end-to-end: Figure 11 packing and Figure 12
//! auto-scaling through the full platform.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::manager::{SchedPolicy, SharingPolicy};
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig};
use fastgshare::profiler::{ProfileDb, ProfileKey, ProfileRecord};

/// Figure 11: the 8-pod set (4 ResNet + 2 RNNT + 2 BERT) needs one GPU
/// under FaST but four under time sharing.
#[test]
fn fig11_gpu_count_fast_vs_time_sharing() {
    let deploy_all = |p: &mut Platform| {
        // Descending area order, as the scheduler submits configurations.
        p.deploy(
            FunctionConfig::new("bert", "bert_base")
                .replicas(2)
                .resources(50.0, 0.6, 0.6),
        )
        .unwrap();
        p.deploy(
            FunctionConfig::new("rnnt", "rnnt")
                .replicas(2)
                .resources(24.0, 0.4, 0.4),
        )
        .unwrap();
        p.deploy(
            FunctionConfig::new("resnet", "resnet50")
                .replicas(4)
                .resources(12.0, 0.4, 0.4),
        )
        .unwrap();
    };

    let mut fast = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .policy(SharingPolicy::FaST)
            .seed(1),
    );
    deploy_all(&mut fast);
    assert_eq!(fast.gpus_in_use(), 1, "FaST packs everything on one GPU");

    let mut ts = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .policy(SharingPolicy::SingleToken)
            .seed(1),
    );
    deploy_all(&mut ts);
    assert_eq!(ts.gpus_in_use(), 4, "time sharing spreads over four GPUs");
}

/// Figure 11's metric claim: FaST's consolidated GPU shows higher
/// utilization and much higher SM occupancy than time sharing's four.
#[test]
fn fig11_utilization_and_occupancy_ratios() {
    let run = |policy: SharingPolicy| {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(4)
                .policy(policy)
                .warmup(SimTime::from_secs(1))
                .seed(2),
        );
        let bert = p
            .deploy(
                FunctionConfig::new("bert", "bert_base")
                    .replicas(2)
                    .resources(50.0, 0.6, 0.6)
                    .saturating(),
            )
            .unwrap();
        let rnnt = p
            .deploy(
                FunctionConfig::new("rnnt", "rnnt")
                    .replicas(2)
                    .resources(24.0, 0.4, 0.4)
                    .saturating(),
            )
            .unwrap();
        let resnet = p
            .deploy(
                FunctionConfig::new("resnet", "resnet50")
                    .replicas(4)
                    .resources(12.0, 0.4, 0.4)
                    .saturating(),
            )
            .unwrap();
        let _ = (bert, rnnt, resnet);
        let report = p.run_for(SimTime::from_secs(6));
        (
            report.gpus_used(),
            report.mean_utilization_active(),
            report.mean_occupancy_active(),
        )
    };
    let (fast_gpus, fast_util, fast_occ) = run(SharingPolicy::FaST);
    let (ts_gpus, ts_util, ts_occ) = run(SharingPolicy::SingleToken);
    assert_eq!(fast_gpus, 1);
    assert_eq!(ts_gpus, 4);
    let util_ratio = fast_util / ts_util;
    let occ_ratio = fast_occ / ts_occ;
    // Paper: 1.34× utilization, 3.13× SM occupancy.
    assert!(
        util_ratio > 1.1,
        "utilization ratio {util_ratio:.2} (fast {fast_util:.2}, ts {ts_util:.2})"
    );
    assert!(
        occ_ratio > 2.0,
        "occupancy ratio {occ_ratio:.2} (fast {fast_occ:.3}, ts {ts_occ:.3})"
    );
}

/// A hand-built ResNet profile for auto-scaling tests (shaped like the
/// measured Figure 8 curves; exact values are refreshed by the real
/// profiler in `profiler_integration.rs`).
fn resnet_profile() -> ProfileDb {
    let mut db = ProfileDb::new();
    let zoo = fastg_models::zoo::resnet50();
    for &(sm_pct, sms) in &[(12.0, 10u32), (24.0, 19), (50.0, 40)] {
        for &q in &[0.2, 0.4, 0.6, 0.8, 1.0] {
            let rps = zoo.ideal_rps(sms, q);
            db.insert(
                "resnet50",
                ProfileKey::new(sm_pct, q),
                ProfileRecord {
                    rps,
                    p50: zoo.latency_at(sms),
                    p99: zoo.latency_at(sms) * 2,
                    utilization: 0.5,
                    sm_occupancy: 0.1,
                },
            );
        }
    }
    db
}

/// Figure 12: the auto-scaler follows a rising load and keeps ResNet's
/// SLO violations under control.
#[test]
fn autoscaler_tracks_ramp_and_meets_slo() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .policy(SharingPolicy::FaST)
            .warmup(SimTime::from_secs(2))
            .seed(3),
    );
    let f = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .slo_ms(69)
                .replicas(1)
                .resources(12.0, 0.4, 1.0),
        )
        .unwrap();
    p.enable_autoscaler(resnet_profile());
    // Ramp from 10 to 120 rps over 20 s, then hold.
    p.set_load(
        f,
        ArrivalProcess::ramp(10.0, 120.0, SimTime::from_secs(20), 5),
    );
    let mid = p.run_for(SimTime::from_secs(20));
    let report = p.run_for(SimTime::from_secs(10));
    let fr = &report.functions[&f];
    assert!(
        fr.replicas >= 3,
        "auto-scaler should have added pods: {} replicas",
        fr.replicas
    );
    // Throughput during the 120 rps hold phase must match the offer.
    let hold_rate = (fr.completed - mid.functions[&f].completed) as f64 / 10.0;
    assert!(
        (hold_rate - 120.0).abs() < 15.0,
        "should keep up with the final rate: {hold_rate} rps"
    );
    assert!(
        fr.violation_ratio < 0.05,
        "SLO violations {:.2}% (paper: < 1% in steady state)",
        fr.violation_ratio * 100.0
    );
}

/// Scale-down: when load drops, the auto-scaler drains pods but never
/// below `min_replicas`, and never below current demand.
#[test]
fn autoscaler_scales_down_after_load_drop() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .policy(SharingPolicy::FaST)
            .seed(4),
    );
    let f = p
        .deploy(
            FunctionConfig::new("resnet", "resnet50")
                .slo_ms(100)
                .replicas(5)
                .resources(12.0, 0.4, 0.4),
        )
        .unwrap();
    p.enable_autoscaler(resnet_profile());
    // Light load only.
    p.set_load(f, ArrivalProcess::poisson(8.0, 6));
    let report = p.run_for(SimTime::from_secs(20));
    let fr = &report.functions[&f];
    assert!(
        fr.replicas < 5,
        "should have drained over-provisioned pods: {}",
        fr.replicas
    );
    assert!(fr.replicas >= 1, "never below min_replicas");
    assert!(fr.violation_ratio < 0.05, "drop must not hurt the SLO");
}

/// `PlatformConfig::scheduler` selects the placement engine, and the
/// engine reports which one is live through `Platform::scheduler_name`.
#[test]
fn scheduler_config_selects_the_arena() {
    for (sched, name) in [
        (SchedPolicy::Paper, "paper-algo1"),
        (SchedPolicy::FastPath, "fast-path"),
        (SchedPolicy::DemandMatch, "demand-match"),
        (SchedPolicy::PriorityColocate, "priority-colocate"),
    ] {
        let p = Platform::new(PlatformConfig::default().nodes(1).scheduler(sched));
        assert_eq!(p.scheduler_name(), name, "{sched:?} wired the wrong engine");
    }
}

/// The `FASTG_SCHED` parser accepts each policy family's aliases and
/// falls back to the digest-pinned paper reference on anything else, so
/// a typo in CI can never silently switch digest families.
#[test]
fn sched_env_aliases_parse() {
    for (value, want) in [
        ("fastpath", SchedPolicy::FastPath),
        ("  Guillotine ", SchedPolicy::FastPath),
        ("parvagpu", SchedPolicy::DemandMatch),
        ("tally", SchedPolicy::PriorityColocate),
        ("paper", SchedPolicy::Paper),
        ("definitely-not-a-policy", SchedPolicy::Paper),
    ] {
        assert_eq!(SchedPolicy::from_env_value(value), want, "alias {value:?}");
    }
}

/// Figure 11 again through the guillotine fast path: the packing result
/// (one GPU for the 8-pod set) is a property of best-area-fit placement,
/// not of the maximal-rects data structure that computes it. DemandMatch
/// snaps every demand up to MIG-slice × MPS-segment shapes, so the same
/// set legitimately inflates onto a second GPU — the quantization tax.
#[test]
fn fig11_packing_survives_fast_path() {
    for (sched, want_gpus) in [(SchedPolicy::FastPath, 1), (SchedPolicy::DemandMatch, 2)] {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(4)
                .policy(SharingPolicy::FaST)
                .scheduler(sched)
                .seed(1),
        );
        p.deploy(
            FunctionConfig::new("bert", "bert_base")
                .replicas(2)
                .resources(50.0, 0.6, 0.6),
        )
        .unwrap();
        p.deploy(
            FunctionConfig::new("rnnt", "rnnt")
                .replicas(2)
                .resources(24.0, 0.4, 0.4),
        )
        .unwrap();
        p.deploy(
            FunctionConfig::new("resnet", "resnet50")
                .replicas(4)
                .resources(12.0, 0.4, 0.4),
        )
        .unwrap();
        assert_eq!(
            p.gpus_in_use(),
            want_gpus,
            "{sched:?} should pack the fig11 set on {want_gpus} GPU(s)"
        );
        assert_eq!(p.scheduler_stats().placements, 8, "{sched:?} placements");
    }
}

/// Priority co-location spreads latency-critical pods instead of packing
/// them: full-quota pods (no elastic headroom) land on distinct GPUs.
#[test]
fn priority_colocate_spreads_latency_critical() {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .policy(SharingPolicy::FaST)
            .scheduler(SchedPolicy::PriorityColocate)
            .seed(6),
    );
    p.deploy(
        FunctionConfig::new("lc", "resnet50")
            .replicas(3)
            .resources(25.0, 0.5, 0.5),
    )
    .unwrap();
    assert_eq!(
        p.gpus_in_use(),
        3,
        "latency-critical pods should spread across GPUs"
    );

    // The same pods under the fast path pack onto one GPU.
    let mut packed = Platform::new(
        PlatformConfig::default()
            .nodes(4)
            .policy(SharingPolicy::FaST)
            .scheduler(SchedPolicy::FastPath)
            .seed(6),
    );
    packed
        .deploy(
            FunctionConfig::new("lc", "resnet50")
                .replicas(3)
                .resources(25.0, 0.5, 0.5),
        )
        .unwrap();
    assert_eq!(packed.gpus_in_use(), 1, "fast path packs the same set");
}

/// Placement failure surfaces as unschedulable, not a crash.
#[test]
fn unschedulable_when_cluster_full() {
    let mut p = Platform::new(PlatformConfig::default().nodes(1).seed(5));
    p.deploy(
        FunctionConfig::new("big", "resnet50")
            .replicas(1)
            .resources(100.0, 1.0, 1.0),
    )
    .unwrap();
    let err = p.deploy(
        FunctionConfig::new("more", "resnet50")
            .replicas(1)
            .resources(50.0, 0.5, 0.5),
    );
    assert!(err.is_err());
    assert_eq!(p.unschedulable_pods(), 1);
}
