//! Differential property tests: the guillotine free-list allocator
//! against the maximal-rectangles reference.
//!
//! The two allocators choose positions differently, so the differential
//! harness forces the *same* placements into both (mirroring every
//! guillotine decision into a `GpuRects` via `place_at`) and then checks
//! that over identical placement sets they agree on what else fits:
//! `GuillotineAlloc::place` accepts a demand exactly when the reference's
//! maximal-rectangle geometry says it is feasible, because the fast path
//! falls back to exact feasibility before rejecting.

use fastg_cluster::PodId;
use fastgshare::scheduler::{GpuRects, GuillotineAlloc, Rect};
use proptest::prelude::*;

/// Structural invariants of the guillotine free set, checked directly
/// (release builds don't run the sanitizer's shadow checks).
fn check_guillotine_invariants(g: &GuillotineAlloc) -> Result<(), TestCaseError> {
    let bounds = Rect::new(0, 0, 100, 100);
    let free = g.free_rects();
    let placements: Vec<(PodId, Rect)> = g.placements().collect();
    for (i, a) in free.iter().enumerate() {
        prop_assert!(bounds.contains(a), "free piece out of bounds: {a:?}");
        for b in free.iter().skip(i + 1) {
            prop_assert!(!a.intersects(b), "free pieces overlap: {a:?} {b:?}");
        }
        for &(_, p) in &placements {
            prop_assert!(!a.intersects(&p), "free piece {a:?} overlaps placement {p:?}");
        }
    }
    let free_sum: u64 = free.iter().map(Rect::area).sum();
    let used_sum: u64 = placements.iter().map(|&(_, r)| r.area()).sum();
    prop_assert_eq!(free_sum, g.free_area(), "free bookkeeping drifted");
    prop_assert_eq!(used_sum, g.used_area(), "used bookkeeping drifted");
    prop_assert_eq!(free_sum + used_sum, g.capacity(), "area conservation violated");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Guillotine invariants hold under arbitrary place/release churn,
    /// and a mirror reference driven to the same positions always agrees
    /// on accept/reject for the next demand.
    #[test]
    fn guillotine_matches_reference_accept_reject(
        ops in prop::collection::vec((0u8..2, 1u32..=60, 1u32..=60), 1..60),
        probe in (1u32..=100, 1u32..=100),
    ) {
        let mut g = GuillotineAlloc::standard();
        // Threshold 1: the reference restructures eagerly, so its
        // maximal-rect list is exact geometry at every step.
        let mut reference = GpuRects::new(100, 100, 1);
        let mut live: Vec<PodId> = Vec::new();
        let mut next = 0u64;
        for &(op, w, h) in &ops {
            if op == 0 || live.is_empty() {
                let pod = PodId(next);
                next += 1;
                match g.place(pod, w, h) {
                    Some(rect) => {
                        prop_assert_eq!((rect.w, rect.h), (w, h));
                        prop_assert!(
                            reference.place_at(pod, rect),
                            "reference rejected the guillotine position {rect:?}"
                        );
                        live.push(pod);
                    }
                    None => {
                        // Guillotine rejection must be geometric
                        // infeasibility, not fast-path blindness.
                        prop_assert!(
                            reference.best_fit(w, h).is_none(),
                            "guillotine rejected ({w}x{h}) the reference accepts"
                        );
                    }
                }
            } else {
                let idx = (w as usize * h as usize) % live.len();
                let pod = live.swap_remove(idx);
                let a = g.release(pod).expect("guillotine releases a live pod");
                let b = reference.release(pod).expect("reference releases a live pod");
                prop_assert_eq!(a, b, "released rectangles diverged");
            }
            prop_assert_eq!(g.used_area(), reference.used_area());
            prop_assert_eq!(g.free_area(), reference.free_area());
            check_guillotine_invariants(&g)?;
        }
        // Final cross-examination on an arbitrary probe demand.
        let (pw, ph) = probe;
        let guillotine_accepts = g.place(PodId(next), pw, ph).is_some();
        let reference_accepts = reference.best_fit(pw, ph).is_some();
        prop_assert_eq!(
            guillotine_accepts, reference_accepts,
            "accept/reject diverged on probe ({} x {})", pw, ph
        );
    }

    /// Releasing everything always merges back to the whole plane: one
    /// free piece, full capacity, regardless of churn history.
    #[test]
    fn full_release_reconsolidates(
        shapes in prop::collection::vec((1u32..=60, 1u32..=60), 1..24)
    ) {
        let mut g = GuillotineAlloc::standard();
        let mut live = Vec::new();
        for (i, &(w, h)) in shapes.iter().enumerate() {
            let pod = PodId(i as u64);
            if g.place(pod, w, h).is_some() {
                live.push(pod);
            }
        }
        for pod in live {
            g.release(pod).expect("live pod releases");
        }
        prop_assert_eq!(g.free_area(), g.capacity());
        prop_assert_eq!(g.free_piece_count(), 1, "merge fixpoint left fragments");
        prop_assert_eq!(g.largest_free_slot_area(), g.capacity());
    }

    /// Generation-stamped handles catch double frees: a handle released
    /// once never releases anything again, even after the slot is reused.
    #[test]
    fn stale_handles_never_double_free(
        shapes in prop::collection::vec((1u32..=50, 1u32..=50), 1..12)
    ) {
        // This property exercises the graceful-`None` API contract by
        // probing stale handles on purpose — exactly what the armed
        // sanitizer escalates to a panic (`alloc-handle-generation`).
        // Under FASTG_SANITIZE=1 the loud path is the correct one, so
        // the quiet path is vacuous here.
        if fastg_des::sanitizer::active() {
            return Ok(());
        }
        let mut g = GuillotineAlloc::standard();
        let mut handles = Vec::new();
        for (i, &(w, h)) in shapes.iter().enumerate() {
            let pod = PodId(i as u64);
            if g.place(pod, w, h).is_some() {
                handles.push((pod, g.handle_of(pod).expect("live pod has a handle")));
            }
        }
        for &(_, id) in &handles {
            prop_assert!(g.release_by_handle(id).is_some(), "first release succeeds");
        }
        // Refill the plane so the slab reuses the freed slots.
        for (i, &(w, h)) in shapes.iter().enumerate() {
            let _ = g.place(PodId(1000 + i as u64), w, h);
        }
        let used_before = g.used_area();
        for &(_, id) in &handles {
            prop_assert!(g.release_by_handle(id).is_none(), "stale handle released");
        }
        prop_assert_eq!(g.used_area(), used_before, "stale handles freed an occupant");
    }
}
