//! Model sharing end-to-end (§5.5, Figure 13): footprints on the live
//! platform, with the storage server allocating from the same device
//! memory as the pods.

use fastg_des::SimTime;
use fastg_workload::ArrivalProcess;
use fastgshare::platform::{FunctionConfig, Platform, PlatformConfig, PlatformError};

const MIB: u64 = 1024 * 1024;

fn deploy_n(model: &str, n: usize, sharing: bool) -> Result<(Platform, u64), PlatformError> {
    let mut p = Platform::new(
        PlatformConfig::default()
            .nodes(1)
            .model_sharing(sharing)
            .oversubscribe(true)
            .seed(1),
    );
    p.deploy(
        FunctionConfig::new("f", model)
            .replicas(n)
            .resources(12.0, 0.5, 0.5),
    )?;
    let used = p.node_memory_used(0);
    Ok((p, used))
}

/// Figure 13, ViT-Huge with 3 pods: 9237 MiB shared (server 2934 +
/// 3×2101) vs 14205 MiB unshared.
#[test]
fn vit_huge_three_pods_footprint() {
    let (_, shared) = deploy_n("vit_huge", 3, true).unwrap();
    let (_, unshared) = deploy_n("vit_huge", 3, false).unwrap();
    assert_eq!(shared / MIB, 2934 + 3 * 2101);
    assert_eq!(unshared / MIB, 3 * 4735);
    assert!(unshared - shared > 4 * 1024 * MIB, "saves more than 4 GiB");
}

/// Figure 13, single-pod case: sharing costs the 300 MiB context.
#[test]
fn single_pod_pays_context_overhead() {
    let (_, shared) = deploy_n("resnet50", 1, true).unwrap();
    let (_, unshared) = deploy_n("resnet50", 1, false).unwrap();
    assert_eq!(shared / MIB, 1427 + 98 + 300);
    assert_eq!(unshared / MIB, 1525);
    assert_eq!((shared - unshared) / MIB, 300);
}

/// Figure 13 capacity: 7 shared vs 4 unshared ResNeXt pods fit a 16 GB
/// V100, enforced by the real allocator.
#[test]
fn resnext_capacity_on_16gb() {
    let deploy_max = |sharing: bool| {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(1)
                .model_sharing(sharing)
                .oversubscribe(true)
                .seed(2),
        );
        let f = p
            .deploy(FunctionConfig::new("rx", "resnext101").replicas(1).resources(12.0, 0.5, 0.5))
            .unwrap();
        let mut count = 1;
        loop {
            p.scale_to(f, count + 1);
            if p.replicas(f) == count + 1 {
                count += 1;
            } else {
                break;
            }
        }
        count
    };
    assert_eq!(deploy_max(true), 7);
    assert_eq!(deploy_max(false), 4);
}

/// Scaling down frees shared memory: the last replica's teardown drops
/// the weights and the storage context too.
#[test]
fn teardown_releases_all_shared_memory() {
    let (mut p, _) = deploy_n("vit_huge", 3, true).unwrap();
    let f = fastg_cluster::FuncId(0);
    p.scale_to(f, 1);
    p.run_for(SimTime::from_secs(1));
    assert_eq!(p.replicas(f), 1);
    let after_one = p.node_memory_used(0);
    assert_eq!(after_one / MIB, 2934 + 2101);
    p.scale_to(f, 0);
    p.run_for(SimTime::from_secs(1));
    assert_eq!(p.node_memory_used(0), 0, "everything freed");
}

/// Sharing does not change serving behaviour, only memory: throughput
/// matches the unshared deployment.
#[test]
fn sharing_is_performance_neutral() {
    let run = |sharing: bool| {
        let mut p = Platform::new(
            PlatformConfig::default()
                .nodes(1)
                .model_sharing(sharing)
                .warmup(SimTime::from_secs(1))
                .seed(3),
        );
        let f = p
            .deploy(
                FunctionConfig::new("f", "resnet50")
                    .replicas(2)
                    .resources(12.0, 1.0, 1.0),
            )
            .unwrap();
        p.set_load(f, ArrivalProcess::poisson(50.0, 4));
        p.run_for(SimTime::from_secs(5)).functions[&f].throughput_rps
    };
    let with = run(true);
    let without = run(false);
    assert!(
        (with - without).abs() < 2.0,
        "sharing changed throughput: {with} vs {without}"
    );
}
